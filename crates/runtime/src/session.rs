//! End-to-end two-party sessions: handshake, input delivery, base OT,
//! window-chunked table streaming, and output sharing.
//!
//! Two co-design ideas from the paper meet in this module:
//!
//! - **Slot-renamed execution.** A session configured with a cached
//!   [`StreamingPlan`] (the default — [`SessionConfig::for_circuit`]
//!   lowers once, the server's circuit cache lowers once *per
//!   workload*) drives the gc executors off the renamed instruction
//!   stream: labels live in a flat slab indexed by window slot, with
//!   zero per-gate hashing or retire bookkeeping and the peak residency
//!   known statically from the plan.
//! - **Decoupled access/execute.** The garbler splits into a compute
//!   stage and an I/O stage joined by a bounded ring of
//!   [`PIPELINE_DEPTH`] rotating chunk buffers:
//!   garbling chunk N+1 overlaps the send/flush of chunk N, and
//!   symmetrically the evaluator receives chunk N+1 while evaluating
//!   chunk N. [`SessionReport`] meters both stages (`compute_ns`,
//!   `io_ns`) and the achieved [`overlap_ratio`](SessionReport) so the
//!   benefit is measurable per session.
//!
//! The pipelined, slab-backed path is byte-identical on the wire to the
//! serial HashMap path — same frames, same flush boundaries, same
//! tables — which the equivalence suite checks across every workload.

use std::collections::VecDeque;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use haac_circuit::Circuit;
use haac_core::lower::{lower_with_reorder, StreamingPlan};
use haac_core::{ReorderKind, WindowModel};
use haac_gc::{
    BankedGarbler, Block, CryptoCounters, GarblerFinish, HashScheme, PlanGarbling,
    StreamingEvaluator, StreamingGarbler,
};
use haac_telemetry::{Counter, Histogram, SlidingRate};
use rand::Rng;

use crate::channel::{Channel, ChannelStats};
use crate::error::{RuntimeError, SessionPhase};
use crate::wire::{
    encode_frame, encode_tables_frame, read_message, write_message, write_tables, Message, OtMode,
    SessionHeader,
};

/// Default cumulative-ack cadence for resumable sessions: the evaluator
/// acknowledges the stream cursor after every this-many table chunks,
/// and the garbler's replay buffer is bounded at twice this many
/// frames. Non-resumable sessions announce an interval of 0 (no acks).
pub const DEFAULT_ACK_INTERVAL: u32 = 16;

/// Per-phase progress deadlines a session enforces on its channel.
///
/// Each bound is per channel *operation* within the phase (the socket
/// read/write-timeout model): the handshake budget covers each framed
/// handshake read/write, the OT budget each OT round trip, and the
/// chunk budget is the per-chunk progress requirement of the table
/// stream and the output tail — a peer that ships nothing for a whole
/// chunk interval is declared stalled. `None` (the default everywhere)
/// means that phase may block forever, the pre-deadline behavior.
///
/// A tripped deadline surfaces as the typed
/// [`RuntimeError::Deadline`]`{phase}` and the session tears down
/// cleanly: half-finished slab and pipeline-ring state unwinds with the
/// driver's early return, scoped stage threads join, and the channel is
/// dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionDeadlines {
    /// Budget for each handshake operation (header, input labels; on
    /// the serving layer also the request/ack exchange).
    pub handshake: Option<Duration>,
    /// Budget for each base-OT exchange operation.
    pub ot: Option<Duration>,
    /// Per-chunk progress budget for the table stream and the output
    /// tail.
    pub chunk: Option<Duration>,
}

impl SessionDeadlines {
    /// No deadlines anywhere: every phase may block forever.
    pub fn none() -> SessionDeadlines {
        SessionDeadlines::default()
    }

    /// The budget charged to operations in `phase`.
    pub fn for_phase(&self, phase: SessionPhase) -> Option<Duration> {
        match phase {
            SessionPhase::Connect | SessionPhase::Handshake => self.handshake,
            SessionPhase::Ot => self.ot,
            SessionPhase::Stream | SessionPhase::Output => self.chunk,
        }
    }
}

/// Arms the channel's I/O deadline for `phase` (clears it when the
/// phase has no budget). Arming failures are transport errors in that
/// phase.
fn arm_phase<C: Channel + ?Sized>(
    channel: &mut C,
    phase: SessionPhase,
    deadlines: &SessionDeadlines,
) -> Result<(), RuntimeError> {
    channel
        .set_io_deadline(deadlines.for_phase(phase))
        .map_err(|e| RuntimeError::from(e).in_phase(phase))
}

/// Which side of the protocol a report describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionRole {
    /// Alice: garbles and streams tables.
    Garbler,
    /// Bob: receives tables and evaluates.
    Evaluator,
}

/// Everything a party chooses before a session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The gate-hash construction (both parties must agree; the header
    /// carries the garbler's choice and the evaluator validates it).
    pub scheme: HashScheme,
    /// The sliding-wire-window geometry streaming is planned around.
    pub window: WindowModel,
    /// The circuit lowered once for slot-slab execution. `Some` (the
    /// default from [`for_circuit`](SessionConfig::for_circuit)) drives
    /// both roles off the renamed stream; `None` falls back to the
    /// liveness-retired HashMap store on the raw circuit.
    pub plan: Option<Arc<StreamingPlan>>,
    /// Overrides the window-derived tables-per-chunk (tests and
    /// benchmarks sweep this; `None` uses the window's slide
    /// granularity).
    pub chunk_override: Option<usize>,
    /// Whether to overlap compute with channel I/O (decoupled stages
    /// over a bounded ring of chunk buffers). `false` runs the legacy
    /// strictly alternating loop; the wire bytes are identical either
    /// way.
    pub pipeline: bool,
    /// Buffers in the pipelined compute/I/O ring. `None` (the default)
    /// starts at [`PIPELINE_DEPTH`] and **autotunes** from the first
    /// ring's measured compute/I/O imbalance (widening toward
    /// [`MAX_PIPELINE_DEPTH`] when the I/O stage dominates), unless the
    /// `HAAC_PIPELINE_DEPTH` environment variable pins a depth.
    /// `Some(n)` pins it explicitly. The chosen depth is reported in
    /// [`SessionReport::pipeline_depth`].
    ///
    /// Caveat: the I/O measurement cannot distinguish a slow link from
    /// a slow *peer* — channel backpressure from a compute-bound
    /// evaluator also inflates `io_ns`, in which case the widened ring
    /// buys nothing (memory stays bounded at the chosen depth either
    /// way). Pin the depth when the peer is known to be the
    /// bottleneck.
    pub pipeline_depth: Option<usize>,
    /// Live instrument handles per-chunk stage spans stream into
    /// *while the session runs* (a serving layer wires these into its
    /// metrics registry; see [`SessionTelemetry`]). `None` — the
    /// default — skips all live recording; the end-of-session
    /// aggregates in [`SessionReport`] are collected either way.
    pub telemetry: Option<Arc<SessionTelemetry>>,
    /// Per-phase progress deadlines enforced on the channel (default:
    /// none — every phase may block forever). See [`SessionDeadlines`].
    pub deadlines: SessionDeadlines,
    /// How the evaluator's input labels are delivered (default:
    /// [`OtMode::Base`], one public-key OT per input bit). Both parties
    /// must agree — the header carries the garbler's choice and the
    /// evaluator refuses a mismatch, exactly like `reorder`.
    pub ot_mode: OtMode,
    /// Cumulative-ack cadence a **resumable** garbler announces in its
    /// header (clamped to at least 1 there): the evaluator acks the
    /// stream cursor every `ack_interval` chunks, and the garbler keeps
    /// at most `2 × ack_interval` unacked frames of replay bytes before
    /// backpressuring on the next ack. The non-resumable drivers ignore
    /// this and announce 0 (no acks, no replay buffer).
    pub ack_interval: u32,
}

impl SessionConfig {
    /// A config with an explicit window and no streaming plan (the raw
    /// circuit, HashMap-store path).
    pub fn new(scheme: HashScheme, window: WindowModel) -> SessionConfig {
        SessionConfig {
            scheme,
            window,
            plan: None,
            chunk_override: None,
            pipeline: true,
            pipeline_depth: None,
            telemetry: None,
            deadlines: SessionDeadlines::none(),
            ot_mode: OtMode::Base,
            ack_interval: DEFAULT_ACK_INTERVAL,
        }
    }

    /// Lowers the circuit once (baseline reorder → rename →
    /// window-size) and sizes the session around the resulting plan:
    /// the slab window under which every read is in-window. Cache the
    /// returned config (or its `plan`) to amortize the lowering across
    /// sessions.
    pub fn for_circuit(circuit: &Circuit) -> SessionConfig {
        SessionConfig::for_circuit_with(circuit, ReorderKind::Baseline)
    }

    /// Like [`for_circuit`](SessionConfig::for_circuit) but lowers with
    /// the given schedule. Both parties must use the same
    /// [`ReorderKind`] — the session header carries the garbler's
    /// choice and the evaluator refuses a disagreement.
    pub fn for_circuit_with(circuit: &Circuit, reorder: ReorderKind) -> SessionConfig {
        SessionConfig::from_plan(
            HashScheme::Rekeyed,
            Arc::new(lower_with_reorder(circuit, reorder)),
        )
    }

    /// Builds a config around an already lowered plan (what a warm
    /// server does on every cache hit — no per-session analysis pass).
    pub fn from_plan(scheme: HashScheme, plan: Arc<StreamingPlan>) -> SessionConfig {
        SessionConfig {
            scheme,
            window: plan.window,
            plan: Some(plan),
            chunk_override: None,
            pipeline: true,
            pipeline_depth: None,
            telemetry: None,
            deadlines: SessionDeadlines::none(),
            ot_mode: OtMode::Base,
            ack_interval: DEFAULT_ACK_INTERVAL,
        }
    }

    /// The schedule this session lowers with: the plan's tag, or
    /// baseline for the planless HashMap path (whose gate order *is*
    /// the baseline).
    pub fn reorder(&self) -> ReorderKind {
        self.plan.as_ref().map_or(ReorderKind::Baseline, |p| p.reorder)
    }

    /// Returns the config with the given tables-per-chunk override.
    pub fn with_chunk_tables(mut self, chunk_tables: usize) -> SessionConfig {
        assert!(chunk_tables > 0, "chunk size must be positive");
        self.chunk_override = Some(chunk_tables);
        self
    }

    /// Returns the config with compute/I/O overlap switched on or off.
    pub fn with_pipeline(mut self, pipeline: bool) -> SessionConfig {
        self.pipeline = pipeline;
        self
    }

    /// Returns the config with a pinned pipeline ring depth (clamped to
    /// `1..=`[`MAX_PIPELINE_DEPTH`]), disabling the autotune.
    pub fn with_pipeline_depth(mut self, depth: usize) -> SessionConfig {
        self.pipeline_depth = Some(depth.clamp(1, MAX_PIPELINE_DEPTH));
        self
    }

    /// Returns the config with live telemetry handles attached (shared
    /// across every session run with this config).
    pub fn with_telemetry(mut self, telemetry: Arc<SessionTelemetry>) -> SessionConfig {
        self.telemetry = Some(telemetry);
        self
    }

    /// Returns the config with per-phase progress deadlines enforced on
    /// the channel.
    pub fn with_deadlines(mut self, deadlines: SessionDeadlines) -> SessionConfig {
        self.deadlines = deadlines;
        self
    }

    /// Returns the config with the given input-label delivery mode.
    /// Both parties must run the same mode — the header announces the
    /// garbler's and the evaluator refuses a disagreement.
    pub fn with_ot_mode(mut self, ot_mode: OtMode) -> SessionConfig {
        self.ot_mode = ot_mode;
        self
    }

    /// Returns the config with the given cumulative-ack cadence for
    /// resumable sessions (clamped to at least 1 when used).
    pub fn with_ack_interval(mut self, ack_interval: u32) -> SessionConfig {
        self.ack_interval = ack_interval.max(1);
        self
    }

    /// The ring depth a pipelined session starts with and whether it
    /// may autotune wider: an explicit config depth wins, then the
    /// `HAAC_PIPELINE_DEPTH` environment variable, then the
    /// [`PIPELINE_DEPTH`] default with autotuning enabled.
    fn resolved_pipeline_depth(&self) -> (usize, bool) {
        if let Some(depth) = self.pipeline_depth {
            return (depth.clamp(1, MAX_PIPELINE_DEPTH), false);
        }
        if let Some(depth) =
            std::env::var("HAAC_PIPELINE_DEPTH").ok().and_then(|v| v.parse::<usize>().ok())
        {
            return (depth.clamp(1, MAX_PIPELINE_DEPTH), false);
        }
        (PIPELINE_DEPTH, true)
    }

    /// Tables per streamed chunk: the window's slide granularity (half
    /// the window), the rate at which HAAC retires SWW residency — capped
    /// so a chunk frame (32 B/table) always fits the wire format's
    /// per-frame payload limit. An explicit
    /// [`chunk_override`](SessionConfig::chunk_override) wins.
    pub fn chunk_tables(&self) -> usize {
        const MAX_CHUNK_TABLES: usize = 1 << 20; // 32 MiB of tables per frame
        self.chunk_override.unwrap_or(self.window.half() as usize).clamp(1, MAX_CHUNK_TABLES)
    }
}

/// Live instrument handles the session driver records per-chunk stage
/// spans into while a session runs.
///
/// The handles are plain lock-free `haac-telemetry` instruments shared
/// by `Arc`, so a serving layer can register them once per workload in
/// its metrics [`Registry`](haac_telemetry::Registry) and watch the
/// stream mid-session: per-chunk compute/I-O latency histograms, OoRW
/// queue occupancy sampled at chunk boundaries, OT phase timing, and a
/// sliding-window table rate feeding an aggregate gates/s gauge.
/// Recording is skipped entirely when
/// [`haac_telemetry::enabled`] is off.
#[derive(Debug, Clone)]
pub struct SessionTelemetry {
    /// Per-chunk garbling/evaluation span, in nanoseconds.
    pub chunk_compute_ns: Arc<Histogram>,
    /// Per-chunk I/O-stage span, in nanoseconds: send+flush on the
    /// garbler, receive on the evaluator.
    pub chunk_io_ns: Arc<Histogram>,
    /// OoRW queue occupancy sampled at every chunk boundary (0 unless
    /// the plan forced a window smaller than the circuit needs).
    pub oor_occupancy: Arc<Histogram>,
    /// OT phase wall time, in nanoseconds (one sample per session).
    pub ot_ns: Arc<Histogram>,
    /// AND tables shipped (garbler) / consumed (evaluator) so far.
    pub tables: Arc<Counter>,
    /// Sliding-window table rate — the live aggregate gates/s.
    pub table_rate: Arc<SlidingRate>,
    /// Base (public-key) OTs performed: one per evaluator input in base
    /// mode, the ~κ bootstrap in extended mode.
    pub base_ots: Arc<Counter>,
    /// Extension-protocol OTs performed (hash-evaluated rows; 0 in base
    /// mode).
    pub ext_ots: Arc<Counter>,
    /// Sliding-window rate of input labels delivered by OT.
    pub ot_rate: Arc<SlidingRate>,
}

impl SessionTelemetry {
    /// Fresh handles not registered anywhere — useful for tests and
    /// one-off sessions that read the handles directly.
    pub fn detached() -> SessionTelemetry {
        SessionTelemetry {
            chunk_compute_ns: Arc::new(Histogram::new()),
            chunk_io_ns: Arc::new(Histogram::new()),
            oor_occupancy: Arc::new(Histogram::new()),
            ot_ns: Arc::new(Histogram::new()),
            tables: Arc::new(Counter::new()),
            table_rate: Arc::new(SlidingRate::new()),
            base_ots: Arc::new(Counter::new()),
            ext_ots: Arc::new(Counter::new()),
            ot_rate: Arc::new(SlidingRate::new()),
        }
    }
}

impl Default for SessionTelemetry {
    fn default() -> SessionTelemetry {
        SessionTelemetry::detached()
    }
}

/// Outcome and accounting for one party's side of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Which side this report describes.
    pub role: SessionRole,
    /// The circuit outputs (both parties learn them).
    pub outputs: Vec<bool>,
    /// Bytes this party sent.
    pub bytes_sent: u64,
    /// Bytes this party received.
    pub bytes_received: u64,
    /// Transport flushes this party performed.
    pub flushes: u64,
    /// Garbled-table chunks streamed.
    pub table_chunks: u64,
    /// Total AND tables streamed.
    pub tables: u64,
    /// High-water mark of simultaneously stored wire labels on this side
    /// (measured on the HashMap path, static from the plan on the slab
    /// path — the two agree for the default lowering).
    pub peak_live_wires: usize,
    /// Whether `peak_live_wires` fit within the announced window.
    pub within_window: bool,
    /// Base OTs performed (one per evaluator input bit).
    pub ot_transfers: u64,
    /// Cipher work this side performed: AES key expansions (2 per AND
    /// when garbling under re-keying) and AES block calls (4 garbling,
    /// 2 evaluating) — the quantities HAAC's gate engines pipeline.
    pub crypto: CryptoCounters,
    /// Nanoseconds the streaming phase spent garbling/evaluating gates.
    pub compute_ns: u64,
    /// Nanoseconds of the streaming phase's I/O stage: channel
    /// send/flush time on the garbler; on the evaluator, time in
    /// blocking receives (serial loop) or the receive stage's full span
    /// (pipelined — network waits and prefetch stalls included).
    pub io_ns: u64,
    /// Wall-clock nanoseconds of the whole table-streaming phase
    /// (compute and I/O together; handshake and OT excluded) — the
    /// denominator for streaming-phase throughput.
    pub stream_ns: u64,
    /// How much of the smaller streaming stage was hidden behind the
    /// larger one: `(compute_ns + io_ns - stream_wall) /
    /// min(compute_ns, io_ns)`, clamped to `[0, 1]`. Zero for serial
    /// sessions; approaches 1 when the stages overlap perfectly.
    ///
    /// Interpret per role: the garbler's is strict (its `io_ns` counts
    /// only send/flush work, so overlap means garbling genuinely ran
    /// under the writes). The pipelined evaluator's is coverage of the
    /// receive *stage's span* by evaluation — the span includes
    /// network waits and prefetch-full stalls, so it is an upper bound
    /// on CPU-level overlap, not a measure of it.
    pub overlap_ratio: f64,
    /// Chunk buffers the pipelined ring settled on (after any
    /// autotune); 0 for serial sessions.
    pub pipeline_depth: usize,
    /// Nanoseconds of the OT phase (setup, transfer, and the wait for
    /// the peer's OT round trips), whichever mode ran.
    pub ot_ns: u64,
    /// Base (public-key) OTs this side took part in: `ot_transfers` in
    /// [`OtMode::Base`], the ~κ bootstrap OTs in [`OtMode::Extended`] —
    /// the quantity the extension exists to keep constant.
    pub base_ots: u64,
    /// Extended (hash-evaluated) OTs: 0 in base mode, one per evaluator
    /// input in extended mode.
    pub ext_ots: u64,
    /// Nanoseconds of `ot_ns` spent blocked waiting for the peer's
    /// OT-phase messages — the input phase's I/O-stall attribution (the
    /// rest of `ot_ns` is local crypto and sends).
    pub ot_io_stall_ns: u64,
    /// Stall attribution, compute-bound side: nanoseconds the
    /// streaming phase's I/O stage sat idle waiting for the compute
    /// stage to hand it the next chunk. Pipelined sessions only (0
    /// when serial — an inline stage never waits for itself). A large
    /// value means the session was **compute-starved**: more engines
    /// or a better schedule would help, a faster link would not.
    pub compute_stall_ns: u64,
    /// Stall attribution, I/O-bound side: nanoseconds the compute
    /// stage sat idle waiting for the I/O stage — the garbler waiting
    /// for a drained ring buffer, the evaluator waiting for the next
    /// received chunk. Pipelined sessions only (0 when serial). A
    /// large value means the session was **I/O-starved**: the link (or
    /// the peer behind it) was the bottleneck.
    ///
    /// Together with `compute_ns` these decompose the streaming wall
    /// clock: on the driving thread, `compute_ns + io_stall_ns` plus
    /// loop overhead tiles `stream_ns` — the per-stage breakdown the
    /// single `overlap_ratio` scalar cannot express.
    pub io_stall_ns: u64,
    /// High-water mark of the OoRW queue during streaming (0 unless
    /// the plan was built against a forced small window).
    pub oor_queue_peak: usize,
    /// Times this session survived a mid-stream connection loss by
    /// resuming onto a fresh channel (0 for non-resumable drivers and
    /// uncut sessions).
    pub resumes: u64,
    /// Stream frames re-sent from the garbler's replay buffer across
    /// all resumes — every one of them was a byte replay, never a
    /// re-garble (0 on the evaluator side).
    pub replayed_frames: u64,
    /// Wall-clock duration of this party's session.
    pub elapsed: Duration,
}

impl SessionReport {
    /// AND-gate throughput of this side over the whole session
    /// (handshake and OT included), in gates per second.
    pub fn and_gates_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.tables as f64 / secs
        } else {
            0.0
        }
    }

    /// Input-label delivery throughput: evaluator-input labels
    /// transferred per second of OT-phase wall clock — the number the
    /// extension moves by orders of magnitude.
    pub fn ots_per_sec(&self) -> f64 {
        let secs = self.ot_ns as f64 / 1e9;
        if secs > 0.0 {
            self.ot_transfers as f64 / secs
        } else {
            0.0
        }
    }
}

/// Accounting for one side's table-streaming phase.
#[derive(Debug, Default, Clone, Copy)]
struct StreamStats {
    chunks: u64,
    tables: u64,
    compute_ns: u64,
    io_ns: u64,
    wall_ns: u64,
    /// I/O stage idle waiting for compute (see
    /// [`SessionReport::compute_stall_ns`]).
    compute_stall_ns: u64,
    /// Compute stage idle waiting for the I/O stage (see
    /// [`SessionReport::io_stall_ns`]).
    io_stall_ns: u64,
    /// Ring depth the streaming phase ran (ended) with; 0 when serial.
    depth: usize,
}

impl StreamStats {
    /// Fraction of the smaller stage hidden behind the larger one.
    fn overlap_ratio(&self) -> f64 {
        let serialized = self.compute_ns + self.io_ns;
        let hidden = serialized.saturating_sub(self.wall_ns);
        let denom = self.compute_ns.min(self.io_ns);
        if denom == 0 {
            0.0
        } else {
            (hidden as f64 / denom as f64).clamp(0.0, 1.0)
        }
    }
}

/// Steady-state chunk buffers are presized but capped (a huge window
/// must not preallocate a huge buffer before any table exists).
const CHUNK_BUFFER_CAP: usize = 1 << 16;

fn expect_message<C: Channel + ?Sized>(
    channel: &mut C,
    expected: &'static str,
) -> Result<Message, RuntimeError> {
    let message = read_message(channel)?;
    if message.name() != expected {
        return Err(RuntimeError::protocol(format!(
            "expected {expected}, received {}",
            message.name()
        )));
    }
    Ok(message)
}

/// A configured plan must describe the session's circuit — a mismatch
/// would garble garbage rather than fail loudly.
///
/// Release builds check the aggregate counts, plus — for baseline-order
/// plans, whose instruction order equals the gate order — the
/// per-instruction opcode sequence (one allocation-free O(gates)
/// pass). Reordered plans permute the opcode sequence, so for them the
/// cheap check stops at the aggregates. Debug builds additionally
/// re-lower **baseline** plans (same window, so forced-window OoRW
/// plans are covered) and require exact equality; reordered plans skip
/// the rebuild — the tag names a schedule *family*, and
/// `plan_from_program` explicitly supports custom orders within it, so
/// a canonical rebuild would falsely reject valid mutually-agreed
/// plans.
fn check_plan(plan: &StreamingPlan, circuit: &Circuit) -> Result<(), RuntimeError> {
    let p = &plan.program;
    let mismatch = p.garbler_inputs() != circuit.garbler_inputs()
        || p.evaluator_inputs() != circuit.evaluator_inputs()
        || p.instrs().len() != circuit.num_gates()
        || p.and_count() != circuit.num_and_gates()
        || p.output_addrs().len() != circuit.outputs().len()
        || (plan.reorder == ReorderKind::Baseline
            && p.instrs().iter().zip(circuit.gates()).any(|(instr, gate)| {
                instr.op
                    != match gate.op {
                        haac_circuit::GateOp::And => haac_gc::SlotOp::And,
                        haac_circuit::GateOp::Xor => haac_gc::SlotOp::Xor,
                        haac_circuit::GateOp::Inv => haac_gc::SlotOp::Inv,
                    }
            }));
    if mismatch {
        return Err(RuntimeError::protocol(
            "session plan does not match the circuit (stale cache entry?)",
        ));
    }
    #[cfg(debug_assertions)]
    if plan.reorder == ReorderKind::Baseline {
        // Rebuild with the same slab window (a forced-window plan
        // re-marks the same OoR reads) and require exact equality.
        let rebuilt = haac_core::lower::lower_with_window(
            circuit,
            ReorderKind::Baseline,
            WindowModel::new(plan.program.slot_wires()),
        );
        if *p != rebuilt.program {
            return Err(RuntimeError::protocol(
                "session plan does not match the circuit's wiring (stale cache entry?)",
            ));
        }
    }
    Ok(())
}

/// Runs the garbler (Alice) side of a streaming session.
///
/// Blocks until the evaluator has shared the outputs back.
///
/// # Errors
///
/// Fails on transport errors, protocol violations, input width
/// mismatch, or a plan that does not describe `circuit`.
pub fn run_garbler<C: Channel + Send + ?Sized, R: Rng + ?Sized>(
    circuit: &Circuit,
    garbler_bits: &[bool],
    rng: &mut R,
    config: &SessionConfig,
    channel: &mut C,
) -> Result<SessionReport, RuntimeError> {
    if garbler_bits.len() != circuit.garbler_inputs() as usize {
        return Err(RuntimeError::protocol(format!(
            "garbler input width {} does not match circuit ({})",
            garbler_bits.len(),
            circuit.garbler_inputs()
        )));
    }
    if let Some(plan) = &config.plan {
        check_plan(plan, circuit)?;
    }
    let start = Instant::now();
    let chunk_tables = config.chunk_tables();

    arm_phase(channel, SessionPhase::Handshake, &config.deadlines)?;
    write_message(
        channel,
        &Message::Header(SessionHeader {
            garbler_inputs: circuit.garbler_inputs(),
            evaluator_inputs: circuit.evaluator_inputs(),
            num_gates: circuit.num_gates() as u64,
            num_tables: circuit.num_and_gates() as u64,
            scheme: config.scheme,
            window_wires: config.window.sww_wires(),
            chunk_tables: chunk_tables as u32,
            reorder: config.reorder(),
            ot_mode: config.ot_mode,
            // No acks, no replay buffer: this driver cannot resume, so
            // asking the evaluator to ack would only add traffic.
            ack_interval: 0,
        }),
    )
    .map_err(|e| e.in_phase(SessionPhase::Handshake))?;

    let plan = config.plan.clone();
    let mut garbler = match &plan {
        Some(plan) => StreamingGarbler::with_plan(&plan.program, rng, config.scheme),
        None => StreamingGarbler::new(circuit, rng, config.scheme),
    };
    write_message(channel, &Message::GarblerInputs(garbler.garbler_input_labels(garbler_bits)))
        .map_err(|e| e.in_phase(SessionPhase::Handshake))?;

    // Input-label delivery for the evaluator: per-input base OTs, or ~κ
    // base OTs bootstrapping an IKNP-style extension. The label pairs
    // must be collected *before* any garbling starts — streaming
    // consumes the input state they come from.
    let evaluator_pairs: Vec<(Block, Block)> = (0..circuit.evaluator_inputs())
        .map(|i| garbler.input_label_pair(circuit.garbler_inputs() + i))
        .collect();
    let live = config.telemetry.as_deref().filter(|_| haac_telemetry::enabled());
    arm_phase(channel, SessionPhase::Ot, &config.deadlines)?;
    let t = Instant::now();
    let mut prefill = PrefillStats::default();
    let ot = match config.ot_mode {
        OtMode::Base => {
            ot_send(&evaluator_pairs, rng, channel).map_err(|e| e.in_phase(SessionPhase::Ot))?
        }
        OtMode::Extended => {
            // The extension opens with a *receive* (the evaluator's
            // OtSetup), so the queued header and garbler inputs must
            // actually reach the peer before this side blocks.
            channel.flush().map_err(|e| RuntimeError::from(e).in_phase(SessionPhase::Ot))?;
            let depth = if config.pipeline { config.resolved_pipeline_depth().0 } else { 0 };
            let (outcome, pre) = ot_send_extended_overlapped(
                &mut garbler,
                &evaluator_pairs,
                rng,
                channel,
                chunk_tables,
                depth,
            )
            .map_err(|e| e.in_phase(SessionPhase::Ot))?;
            prefill = pre;
            outcome
        }
    };
    let ot_ns = t.elapsed().as_nanos() as u64;
    if let Some(tel) = live {
        tel.ot_ns.record(ot_ns);
        tel.base_ots.add(ot.base_ots);
        tel.ext_ots.add(ot.ext_ots);
        tel.ot_rate.add(ot.transfers);
    }

    // Stream tables in window-sized chunks, one flush per chunk. Two
    // rotating buffers serve the whole stream — `next_tables_into`
    // refills and `write_tables` frames from borrowed slices, so the
    // steady state performs zero per-chunk allocations whether the I/O
    // stage is overlapped or inline.
    arm_phase(channel, SessionPhase::Stream, &config.deadlines)?;
    let stream_start = Instant::now();
    // Chunks garbled under the OT wall (extended mode's overlap) ship
    // first; the first flush here also carries the still-queued masked
    // OT labels, mirroring the base path's unflushed ciphertexts.
    let mut pre_stats = StreamStats { compute_ns: prefill.compute_ns, ..StreamStats::default() };
    for chunk in &prefill.chunks {
        let seq = pre_stats.chunks;
        pre_stats.chunks += 1;
        pre_stats.tables += chunk.len() as u64;
        if let Some(tel) = live {
            tel.oor_occupancy.record(garbler.oor_queue_len() as u64);
        }
        let t = Instant::now();
        (|| -> Result<(), RuntimeError> {
            write_tables(channel, seq, chunk)?;
            Ok(channel.flush()?)
        })()
        .map_err(|e| e.in_phase(SessionPhase::Stream))?;
        let io_ns = t.elapsed().as_nanos() as u64;
        pre_stats.io_ns += io_ns;
        if let Some(tel) = live {
            tel.chunk_io_ns.record(io_ns);
            tel.tables.add(chunk.len() as u64);
            tel.table_rate.add(chunk.len() as u64);
        }
    }
    let mut stats = if config.pipeline {
        let (depth, autotune) = config.resolved_pipeline_depth();
        let shape = StreamShape {
            chunk_tables,
            chunk_pinned: config.chunk_override.is_some(),
            depth,
            autotune,
        };
        stream_tables_pipelined(&mut garbler, channel, shape, pre_stats.chunks, live)
    } else {
        stream_tables_serial(&mut garbler, channel, chunk_tables, pre_stats.chunks, live)
    }
    .map_err(|e| e.in_phase(SessionPhase::Stream))?;
    stats.chunks += pre_stats.chunks;
    stats.tables += pre_stats.tables;
    stats.compute_ns += pre_stats.compute_ns;
    stats.io_ns += pre_stats.io_ns;
    stats.wall_ns = stream_start.elapsed().as_nanos() as u64;

    let finish = garbler.finish();
    // The chunk budget stays armed: the output tail is the same
    // per-operation progress requirement as the stream it follows.
    (|| -> Result<(), RuntimeError> {
        write_message(channel, &Message::OutputDecode(finish.output_decode))?;
        Ok(channel.flush()?)
    })()
    .map_err(|e| e.in_phase(SessionPhase::Output))?;

    let Message::Outputs(outputs) =
        expect_message(channel, "Outputs").map_err(|e| e.in_phase(SessionPhase::Output))?
    else {
        unreachable!()
    };
    if outputs.len() != circuit.outputs().len() {
        return Err(RuntimeError::protocol(format!(
            "evaluator shared {} outputs, circuit has {}",
            outputs.len(),
            circuit.outputs().len()
        )));
    }

    let channel_stats = channel.stats();
    Ok(SessionReport {
        role: SessionRole::Garbler,
        outputs,
        bytes_sent: channel_stats.bytes_sent,
        bytes_received: channel_stats.bytes_received,
        flushes: channel_stats.flushes,
        table_chunks: stats.chunks,
        tables: stats.tables,
        peak_live_wires: finish.peak_live_wires,
        within_window: finish.peak_live_wires <= config.window.sww_wires() as usize,
        ot_transfers: ot.transfers,
        crypto: finish.crypto,
        compute_ns: stats.compute_ns,
        io_ns: stats.io_ns,
        stream_ns: stats.wall_ns,
        overlap_ratio: stats.overlap_ratio(),
        pipeline_depth: stats.depth,
        ot_ns,
        base_ots: ot.base_ots,
        ext_ots: ot.ext_ots,
        ot_io_stall_ns: ot.io_stall_ns,
        compute_stall_ns: stats.compute_stall_ns,
        io_stall_ns: stats.io_stall_ns,
        oor_queue_peak: finish.oor_queue_peak,
        resumes: 0,
        replayed_frames: 0,
        elapsed: start.elapsed(),
    })
}

/// The legacy strictly alternating loop: garble a chunk, ship it, wait,
/// repeat. Byte-identical output to the pipelined path. Stall
/// attribution stays zero — an inline stage never waits for itself.
fn stream_tables_serial<C: Channel + ?Sized>(
    garbler: &mut StreamingGarbler<'_>,
    channel: &mut C,
    chunk_tables: usize,
    start_seq: u64,
    live: Option<&SessionTelemetry>,
) -> Result<StreamStats, RuntimeError> {
    let start = Instant::now();
    let mut stats = StreamStats::default();
    let mut next_seq = start_seq;
    let mut chunk: Vec<[Block; 2]> = Vec::with_capacity(chunk_tables.min(CHUNK_BUFFER_CAP));
    loop {
        let t = Instant::now();
        let more = garbler.next_tables_into(chunk_tables, &mut chunk);
        let compute_ns = t.elapsed().as_nanos() as u64;
        stats.compute_ns += compute_ns;
        if !more {
            break;
        }
        if chunk.is_empty() {
            continue;
        }
        stats.tables += chunk.len() as u64;
        stats.chunks += 1;
        if let Some(tel) = live {
            tel.chunk_compute_ns.record(compute_ns);
            tel.oor_occupancy.record(garbler.oor_queue_len() as u64);
        }
        let t = Instant::now();
        write_tables(channel, next_seq, &chunk)?;
        next_seq += 1;
        channel.flush()?;
        let io_ns = t.elapsed().as_nanos() as u64;
        stats.io_ns += io_ns;
        if let Some(tel) = live {
            tel.chunk_io_ns.record(io_ns);
            tel.tables.add(chunk.len() as u64);
            tel.table_rate.add(chunk.len() as u64);
        }
    }
    stats.wall_ns = start.elapsed().as_nanos() as u64;
    Ok(stats)
}

/// Chunk buffers a pipelined session's compute/I-O ring *starts* with.
/// Two is the textbook double buffer but turns every handoff into a
/// blocking rendezvous (the compute stage waits out a scheduler round
/// trip per chunk); a third buffer lets the compute stage keep garbling
/// while the I/O thread is being woken. The overlap pays off whenever
/// the I/O stage genuinely waits (network serialization, a lagging
/// peer, a second hardware thread to run on); on a single-CPU host
/// against a pure loopback it degrades to roughly serial cost.
///
/// When the I/O stage measurably dominates, the garbler **autotunes**
/// the ring wider (up to [`MAX_PIPELINE_DEPTH`]) from the first ring's
/// `compute_ns`/`io_ns` imbalance — see
/// [`SessionConfig::pipeline_depth`]. Memory stays bounded at the
/// chosen depth.
///
/// Public so benchmarks that model the pipeline schedule stay in sync
/// with the driver.
pub const PIPELINE_DEPTH: usize = 3;

/// Ceiling of the pipeline-depth autotune (and of explicit depth
/// overrides): a deeper ring only buys anything while transfer beats
/// compute by the same factor, and every buffer is a whole chunk of
/// memory.
pub const MAX_PIPELINE_DEPTH: usize = 8;

/// Ceiling of the chunk-size autotune's growth factor: past a few
/// multiples the per-frame overhead being amortized (tag + length +
/// count + one flush) is already noise against the table payload.
const MAX_CHUNK_GROWTH: usize = 4;

/// Absolute chunk ceiling shared with [`SessionConfig::chunk_tables`]:
/// 2^20 tables = 32 MiB frames, under the wire's 64 MiB payload cap.
const MAX_CHUNK_TABLES: usize = 1 << 20;

/// The joint first-ring autotune decision: from the measured per-chunk
/// `io_avg`/`compute_avg` imbalance, pick the ring depth **and** the
/// chunk size the rest of the stream runs with.
///
/// Transfers dominating means every handoff stalls on the wire, so two
/// levers open: a deeper ring absorbs jitter (more chunks in flight),
/// and larger chunks amortize per-frame overhead (fewer flushes for the
/// same bytes). The chunk lever stays untouched when the caller pinned
/// an explicit chunk size — tests and protocols that assert exact
/// framing opt out by pinning. Growing the chunk mid-stream is
/// wire-compatible: the header's `chunk_tables` is a capacity hint, and
/// frames carry their own table counts.
fn autotune_stream_shape(
    io_avg: u64,
    compute_avg: u64,
    depth: usize,
    chunk_tables: usize,
    chunk_pinned: bool,
) -> (usize, usize) {
    if io_avg <= compute_avg {
        return (depth, chunk_tables);
    }
    let ratio = (io_avg / compute_avg) as usize;
    let tuned_depth = (ratio + 1).clamp(depth, MAX_PIPELINE_DEPTH);
    let tuned_chunk = if chunk_pinned {
        chunk_tables
    } else {
        chunk_tables.saturating_mul(ratio.min(MAX_CHUNK_GROWTH)).min(MAX_CHUNK_TABLES)
    };
    (tuned_depth, tuned_chunk)
}

/// The stream shape [`stream_tables_pipelined`] starts from: the chunk
/// size (and whether the caller pinned it against autotuning), the
/// initial ring depth, and whether the first-ring autotune may widen
/// either.
#[derive(Debug, Clone, Copy)]
struct StreamShape {
    chunk_tables: usize,
    chunk_pinned: bool,
    depth: usize,
    autotune: bool,
}

/// The decoupled access/execute pipeline: the calling thread garbles
/// while a scoped I/O stage sends and flushes, joined by a bounded
/// ring of rotating chunk buffers (chunk N+1 is garbled while chunk N
/// is on the wire). Bounded by construction: at most `depth` chunks
/// exist at once, so a slow evaluator still backpressures the garbler
/// through the channel, exactly as in the serial loop.
///
/// With `autotune` set, one ring of chunks is measured and the ring is
/// widened once — to roughly the measured io/compute ratio, capped at
/// [`MAX_PIPELINE_DEPTH`] — when the I/O stage dominates: extra depth
/// only helps while transfers are the bottleneck, and the first-ring
/// measurement is exactly the imbalance the widened ring must absorb.
fn stream_tables_pipelined<C: Channel + Send + ?Sized>(
    garbler: &mut StreamingGarbler<'_>,
    channel: &mut C,
    shape: StreamShape,
    start_seq: u64,
    live: Option<&SessionTelemetry>,
) -> Result<StreamStats, RuntimeError> {
    use std::sync::atomic::{AtomicU64, Ordering};

    let StreamShape { mut chunk_tables, chunk_pinned, depth, autotune } = shape;
    let start = Instant::now();
    let capacity = chunk_tables.min(CHUNK_BUFFER_CAP);
    // Full buffers travel compute → I/O; drained buffers travel back
    // for refilling. The full queue holds every buffer without
    // blocking, so the compute stage only stalls when the I/O stage is
    // a full ring behind (genuine backpressure, not handoff latency).
    // Capacity is the ceiling, not the depth: only `depth` buffers
    // circulate until the autotune injects more.
    let (full_tx, full_rx) = mpsc::sync_channel::<Vec<[Block; 2]>>(MAX_PIPELINE_DEPTH);
    let (empty_tx, empty_rx) = mpsc::channel::<Vec<[Block; 2]>>();
    let mut depth = depth.clamp(1, MAX_PIPELINE_DEPTH);
    for _ in 0..depth {
        empty_tx.send(Vec::with_capacity(capacity)).expect("receiver held by this thread");
    }

    // Live I/O-stage accounting the compute stage reads at the
    // autotune point (and that survives the stage's early death).
    let shipped_ns = AtomicU64::new(0);
    let shipped_chunks = AtomicU64::new(0);
    // Compute-starved stall: ns the I/O stage spent blocked on
    // `full_rx.recv` for a chunk that did arrive. The final recv — the
    // one that observes end-of-stream — is excluded: that wait is the
    // stream running out, not a chunk being late.
    let starved_ns = AtomicU64::new(0);

    let mut stats = StreamStats::default();
    let failure = std::thread::scope(|scope| {
        let io_stats = (&shipped_ns, &shipped_chunks, &starved_ns);
        let io = scope.spawn(move || {
            let mut failure = None;
            let mut next_seq = start_seq;
            loop {
                let waited = Instant::now();
                let Ok(chunk) = full_rx.recv() else { break };
                io_stats.2.fetch_add(waited.elapsed().as_nanos() as u64, Ordering::Relaxed);
                let t = Instant::now();
                let shipped = write_tables(channel, next_seq, &chunk)
                    .and_then(|()| channel.flush().map_err(RuntimeError::from));
                next_seq += 1;
                let chunk_io_ns = t.elapsed().as_nanos() as u64;
                io_stats.0.fetch_add(chunk_io_ns, Ordering::Relaxed);
                if let Err(e) = shipped {
                    failure = Some(e);
                    break; // dropping the queues unblocks the compute stage
                }
                io_stats.1.fetch_add(1, Ordering::Relaxed);
                if let Some(tel) = live {
                    tel.chunk_io_ns.record(chunk_io_ns);
                    tel.tables.add(chunk.len() as u64);
                    tel.table_rate.add(chunk.len() as u64);
                }
                let _ = empty_tx.send(chunk);
            }
            failure
        });
        // Compute stage, on the calling thread. A `None` buffer means
        // the I/O stage died; its error surfaces after the join.
        // `extra` is the widening budget the autotune granted: fresh
        // buffers enter the ring here instead of blocking on a drained
        // one (they return through `empty_rx` like any other).
        let mut tuned = !autotune;
        let mut extra = 0usize;
        let mut stash: Option<Vec<[Block; 2]>> = None;
        while let Some(mut chunk) = stash
            .take()
            .or_else(|| {
                (extra > 0).then(|| {
                    extra -= 1;
                    Vec::with_capacity(capacity)
                })
            })
            .or_else(|| {
                // Waiting for a drained buffer is the I/O stage being
                // behind: the whole ring is on the wire.
                let waited = Instant::now();
                let got = empty_rx.recv().ok();
                stats.io_stall_ns += waited.elapsed().as_nanos() as u64;
                got
            })
        {
            let t = Instant::now();
            let more = garbler.next_tables_into(chunk_tables, &mut chunk);
            let chunk_compute_ns = t.elapsed().as_nanos() as u64;
            stats.compute_ns += chunk_compute_ns;
            if !more {
                break;
            }
            if chunk.is_empty() {
                stash = Some(chunk); // table-free tail: nothing to ship
                continue;
            }
            stats.tables += chunk.len() as u64;
            stats.chunks += 1;
            if let Some(tel) = live {
                tel.chunk_compute_ns.record(chunk_compute_ns);
                tel.oor_occupancy.record(garbler.oor_queue_len() as u64);
            }
            let waited = Instant::now();
            if full_tx.send(chunk).is_err() {
                break;
            }
            stats.io_stall_ns += waited.elapsed().as_nanos() as u64;
            if !tuned && stats.chunks >= depth as u64 {
                // First ring complete: if transfers dominate, widen the
                // ring once and (unless pinned) grow the chunk size —
                // both from the same imbalance measurement.
                let chunks_done = shipped_chunks.load(Ordering::Relaxed);
                if let Some(io_avg) = shipped_ns.load(Ordering::Relaxed).checked_div(chunks_done) {
                    tuned = true;
                    let compute_avg = (stats.compute_ns / stats.chunks).max(1);
                    let (target_depth, target_chunk) = autotune_stream_shape(
                        io_avg,
                        compute_avg,
                        depth,
                        chunk_tables,
                        chunk_pinned,
                    );
                    extra = target_depth - depth;
                    depth = target_depth;
                    chunk_tables = target_chunk;
                }
            }
        }
        drop(full_tx); // end of stream: the I/O stage drains and exits
        io.join().expect("table I/O stage panicked")
    });
    stats.io_ns = shipped_ns.load(Ordering::Relaxed);
    stats.compute_stall_ns = starved_ns.load(Ordering::Relaxed);
    stats.depth = depth;
    if let Some(e) = failure {
        return Err(e);
    }
    stats.wall_ns = start.elapsed().as_nanos() as u64;
    Ok(stats)
}

/// Runs the evaluator (Bob) side of a streaming session with explicit
/// options: `config.plan`/`config.pipeline` select the label store and
/// the receive/evaluate overlap (`config.scheme` and `config.window`
/// are the garbler's choices and arrive via the header).
///
/// # Errors
///
/// Fails on transport errors, protocol violations, input width
/// mismatch, or a plan that does not describe `circuit`.
pub fn run_evaluator_with<C: Channel + Send + ?Sized, R: Rng + ?Sized>(
    circuit: &Circuit,
    evaluator_bits: &[bool],
    rng: &mut R,
    config: &SessionConfig,
    channel: &mut C,
) -> Result<SessionReport, RuntimeError> {
    if evaluator_bits.len() != circuit.evaluator_inputs() as usize {
        return Err(RuntimeError::protocol(format!(
            "evaluator input width {} does not match circuit ({})",
            evaluator_bits.len(),
            circuit.evaluator_inputs()
        )));
    }
    if let Some(plan) = &config.plan {
        check_plan(plan, circuit)?;
    }
    let start = Instant::now();

    arm_phase(channel, SessionPhase::Handshake, &config.deadlines)?;
    let Message::Header(header) =
        expect_message(channel, "Header").map_err(|e| e.in_phase(SessionPhase::Handshake))?
    else {
        unreachable!()
    };
    validate_header(circuit, &header)?;
    if header.reorder != config.reorder() {
        // Running anyway would not fail fast — it would desynchronize
        // the table stream and surface as garbage labels much later.
        return Err(RuntimeError::protocol(format!(
            "reorder mismatch: the garbler lowered with {}, this side with {}",
            header.reorder.label(),
            config.reorder().label()
        )));
    }
    if header.ot_mode != config.ot_mode {
        // Same fail-fast rule as the schedule: the two modes speak
        // different message sequences, so running on would deadlock or
        // desynchronize inside the OT phase instead of failing here.
        return Err(RuntimeError::protocol(format!(
            "OT mode mismatch: the garbler negotiated {}, this side {}",
            header.ot_mode.label(),
            config.ot_mode.label()
        )));
    }

    let Message::GarblerInputs(garbler_labels) = expect_message(channel, "GarblerInputs")
        .map_err(|e| e.in_phase(SessionPhase::Handshake))?
    else {
        unreachable!()
    };
    if garbler_labels.len() != circuit.garbler_inputs() as usize {
        return Err(RuntimeError::protocol("garbler label count mismatch"));
    }

    let live = config.telemetry.as_deref().filter(|_| haac_telemetry::enabled());
    arm_phase(channel, SessionPhase::Ot, &config.deadlines)?;
    let t = Instant::now();
    let (own_labels, ot) = match header.ot_mode {
        OtMode::Base => ot_receive(evaluator_bits, rng, channel),
        OtMode::Extended => ot_receive_extended(evaluator_bits, rng, channel),
    }
    .map_err(|e| e.in_phase(SessionPhase::Ot))?;
    let ot_ns = t.elapsed().as_nanos() as u64;
    if let Some(tel) = live {
        tel.ot_ns.record(ot_ns);
        tel.base_ots.add(ot.base_ots);
        tel.ext_ots.add(ot.ext_ots);
        tel.ot_rate.add(ot.transfers);
    }

    let mut input_labels = garbler_labels;
    input_labels.extend(own_labels);
    let plan = config.plan.clone();
    let mut evaluator = match &plan {
        Some(plan) => StreamingEvaluator::with_plan(&plan.program, input_labels, header.scheme),
        None => StreamingEvaluator::new(circuit, input_labels, header.scheme),
    };

    arm_phase(channel, SessionPhase::Stream, &config.deadlines)?;
    let (output_decode, stats) = if config.pipeline {
        let (depth, _) = config.resolved_pipeline_depth();
        recv_tables_pipelined(&mut evaluator, channel, depth, header.ack_interval, live)
    } else {
        recv_tables_serial(&mut evaluator, channel, header.ack_interval, live)
    }
    .map_err(|e| e.in_phase(SessionPhase::Stream))?;
    if !evaluator.is_done() {
        return Err(RuntimeError::protocol(format!(
            "table stream ended early: consumed {} of {} tables",
            evaluator.tables_consumed(),
            header.num_tables
        ))
        .in_phase(SessionPhase::Stream));
    }

    let tables = evaluator.tables_consumed();
    let finish = evaluator.finish(&output_decode);
    (|| -> Result<(), RuntimeError> {
        write_message(channel, &Message::Outputs(finish.outputs.clone()))?;
        Ok(channel.flush()?)
    })()
    .map_err(|e| e.in_phase(SessionPhase::Output))?;

    let channel_stats = channel.stats();
    Ok(SessionReport {
        role: SessionRole::Evaluator,
        outputs: finish.outputs,
        bytes_sent: channel_stats.bytes_sent,
        bytes_received: channel_stats.bytes_received,
        flushes: channel_stats.flushes,
        table_chunks: stats.chunks,
        tables,
        peak_live_wires: finish.peak_live_wires,
        within_window: finish.peak_live_wires <= header.window_wires as usize,
        ot_transfers: circuit.evaluator_inputs() as u64,
        crypto: finish.crypto,
        compute_ns: stats.compute_ns,
        io_ns: stats.io_ns,
        stream_ns: stats.wall_ns,
        overlap_ratio: stats.overlap_ratio(),
        pipeline_depth: stats.depth,
        ot_ns,
        base_ots: ot.base_ots,
        ext_ots: ot.ext_ots,
        ot_io_stall_ns: ot.io_stall_ns,
        compute_stall_ns: stats.compute_stall_ns,
        io_stall_ns: stats.io_stall_ns,
        oor_queue_peak: finish.oor_queue_peak,
        resumes: 0,
        replayed_frames: 0,
        elapsed: start.elapsed(),
    })
}

/// Runs the evaluator (Bob) side of a streaming session with default
/// options: the circuit is lowered on the spot with the **baseline**
/// schedule (callers running many sessions — or negotiating a
/// reordered schedule — should cache a plan and use
/// [`run_evaluator_with`]/[`SessionConfig::from_plan`] instead; a
/// garbler announcing a non-baseline reorder is refused with a typed
/// mismatch error).
///
/// The evaluator learns the session parameters from the garbler's header
/// and validates them against its own copy of the circuit.
///
/// # Errors
///
/// Fails on transport errors, protocol violations, or input width
/// mismatch.
pub fn run_evaluator<C: Channel + Send + ?Sized, R: Rng + ?Sized>(
    circuit: &Circuit,
    evaluator_bits: &[bool],
    rng: &mut R,
    channel: &mut C,
) -> Result<SessionReport, RuntimeError> {
    let config = SessionConfig::for_circuit(circuit);
    run_evaluator_with(circuit, evaluator_bits, rng, &config, channel)
}

/// A received chunk's sequence number must continue the stream exactly
/// — a gap or repeat means the transports desynchronized (or a resume
/// replayed from the wrong cursor), and evaluating on would produce
/// garbage labels much later instead of failing here.
fn check_seq(seq: u64, expected: u64) -> Result<(), RuntimeError> {
    if seq != expected {
        return Err(RuntimeError::protocol(format!(
            "table stream out of sequence: received chunk {seq}, expected {expected}"
        )));
    }
    Ok(())
}

/// Sends the cumulative ack the garbler's replay buffer trims on, if
/// the announced cadence says this cursor is an ack point. Flushes —
/// an unflushed ack would let the garbler's bounded buffer deadlock.
fn maybe_ack<C: Channel + ?Sized>(
    channel: &mut C,
    ack_interval: u32,
    next_seq: u64,
) -> Result<(), RuntimeError> {
    if ack_interval > 0 && next_seq.is_multiple_of(u64::from(ack_interval)) {
        write_message(channel, &Message::ChunkAck { upto_seq: next_seq })?;
        channel.flush()?;
    }
    Ok(())
}

/// Serial receive loop: block for a frame, evaluate it, repeat. Stall
/// attribution stays zero — an inline stage never waits for itself.
fn recv_tables_serial<C: Channel + ?Sized>(
    evaluator: &mut StreamingEvaluator<'_>,
    channel: &mut C,
    ack_interval: u32,
    live: Option<&SessionTelemetry>,
) -> Result<(Vec<bool>, StreamStats), RuntimeError> {
    let start = Instant::now();
    let mut stats = StreamStats::default();
    let decode = loop {
        let t = Instant::now();
        let message = read_message(channel)?;
        let io_ns = t.elapsed().as_nanos() as u64;
        stats.io_ns += io_ns;
        match message {
            Message::Tables { seq, tables: chunk } => {
                check_seq(seq, stats.chunks)?;
                stats.chunks += 1;
                stats.tables += chunk.len() as u64;
                let t = Instant::now();
                evaluator.feed(&chunk);
                let compute_ns = t.elapsed().as_nanos() as u64;
                stats.compute_ns += compute_ns;
                if let Some(tel) = live {
                    tel.chunk_io_ns.record(io_ns);
                    tel.chunk_compute_ns.record(compute_ns);
                    tel.oor_occupancy.record(evaluator.oor_queue_len() as u64);
                    tel.tables.add(chunk.len() as u64);
                    tel.table_rate.add(chunk.len() as u64);
                }
                maybe_ack(channel, ack_interval, stats.chunks)?;
            }
            Message::OutputDecode(decode) => break decode,
            other => {
                return Err(RuntimeError::protocol(format!(
                    "expected Tables or OutputDecode, received {}",
                    other.name()
                )))
            }
        }
    };
    stats.wall_ns = start.elapsed().as_nanos() as u64;
    Ok((decode, stats))
}

/// Pipelined receive: a scoped I/O stage blocks on the channel and
/// hands table chunks to the calling thread, so the receive of chunk
/// N+1 overlaps the evaluation of chunk N.
///
/// The receive stage's `io_ns` is its full span — first receive attempt
/// until the decode message lands. That span covers both genuine
/// network waits and stalls with the prefetch queue full (the stage ran
/// *ahead* of evaluation); either way, every nanosecond of it that
/// coincides with evaluation is receive work the serial loop would have
/// paid inline, which is exactly what `overlap_ratio` reports.
fn recv_tables_pipelined<C: Channel + Send + ?Sized>(
    evaluator: &mut StreamingEvaluator<'_>,
    channel: &mut C,
    depth: usize,
    ack_interval: u32,
    live: Option<&SessionTelemetry>,
) -> Result<(Vec<bool>, StreamStats), RuntimeError> {
    use std::sync::atomic::{AtomicU64, Ordering};

    let start = Instant::now();
    let mut stats =
        StreamStats { depth: depth.clamp(1, MAX_PIPELINE_DEPTH), ..StreamStats::default() };
    // Prefetch is bounded like the garbler's ring: at most `depth`
    // chunks received-but-unevaluated at once.
    let (chunk_tx, chunk_rx) = mpsc::sync_channel::<Vec<[Block; 2]>>(stats.depth);
    // Compute-starved stall: ns the receive stage spent blocked on a
    // full prefetch queue — it ran ahead of evaluation and had to wait
    // for the evaluator to catch up.
    let starved_ns = AtomicU64::new(0);
    let (io_ns, outcome) = std::thread::scope(|scope| {
        let starved = &starved_ns;
        let io = scope.spawn(move || {
            let span = Instant::now();
            // Acks are written from this stage: it owns the channel, and
            // the ack cadence tracks receive order, not evaluation order.
            let mut expected_seq = 0u64;
            loop {
                let t = Instant::now();
                let message = read_message(channel);
                let read_ns = t.elapsed().as_nanos() as u64;
                let io_ns = span.elapsed().as_nanos() as u64;
                match message {
                    Ok(Message::Tables { seq, tables: chunk }) => {
                        if let Err(e) = check_seq(seq, expected_seq) {
                            return (io_ns, Err(e));
                        }
                        expected_seq += 1;
                        if let Some(tel) = live {
                            tel.chunk_io_ns.record(read_ns);
                        }
                        let waited = Instant::now();
                        if chunk_tx.send(chunk).is_err() {
                            let reason = "evaluation stage stopped mid-stream";
                            return (io_ns, Err(RuntimeError::protocol(reason)));
                        }
                        starved.fetch_add(waited.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        if let Err(e) = maybe_ack(channel, ack_interval, expected_seq) {
                            return (io_ns, Err(e));
                        }
                    }
                    Ok(Message::OutputDecode(decode)) => return (io_ns, Ok(decode)),
                    Ok(other) => {
                        let reason =
                            format!("expected Tables or OutputDecode, received {}", other.name());
                        return (io_ns, Err(RuntimeError::protocol(reason)));
                    }
                    Err(e) => return (io_ns, Err(e)),
                }
            }
        });
        // Evaluation stage, on the calling thread. Drains everything
        // the I/O stage queued even after it has exited. Waiting for
        // the next received chunk is the I/O-starved stall; the final
        // recv (observing the closed queue) is excluded — that wait is
        // the stream ending, not a chunk being late.
        loop {
            let waited = Instant::now();
            let Ok(chunk) = chunk_rx.recv() else { break };
            stats.io_stall_ns += waited.elapsed().as_nanos() as u64;
            stats.chunks += 1;
            stats.tables += chunk.len() as u64;
            let t = Instant::now();
            evaluator.feed(&chunk);
            let compute_ns = t.elapsed().as_nanos() as u64;
            stats.compute_ns += compute_ns;
            if let Some(tel) = live {
                tel.chunk_compute_ns.record(compute_ns);
                tel.oor_occupancy.record(evaluator.oor_queue_len() as u64);
                tel.tables.add(chunk.len() as u64);
                tel.table_rate.add(chunk.len() as u64);
            }
        }
        io.join().expect("table receive stage panicked")
    });
    stats.io_ns = io_ns;
    stats.compute_stall_ns = starved_ns.load(Ordering::Relaxed);
    let decode = outcome?;
    stats.wall_ns = start.elapsed().as_nanos() as u64;
    Ok((decode, stats))
}

fn validate_header(circuit: &Circuit, header: &SessionHeader) -> Result<(), RuntimeError> {
    let mismatch = |what: &str, ours: u64, theirs: u64| {
        Err(RuntimeError::protocol(format!(
            "circuit mismatch: {what} is {theirs} on the garbler, {ours} here"
        )))
    };
    if header.garbler_inputs != circuit.garbler_inputs() {
        return mismatch(
            "garbler_inputs",
            circuit.garbler_inputs() as u64,
            header.garbler_inputs as u64,
        );
    }
    if header.evaluator_inputs != circuit.evaluator_inputs() {
        return mismatch(
            "evaluator_inputs",
            circuit.evaluator_inputs() as u64,
            header.evaluator_inputs as u64,
        );
    }
    if header.num_gates != circuit.num_gates() as u64 {
        return mismatch("num_gates", circuit.num_gates() as u64, header.num_gates);
    }
    if header.num_tables != circuit.num_and_gates() as u64 {
        return mismatch("num_tables", circuit.num_and_gates() as u64, header.num_tables);
    }
    if header.chunk_tables == 0 {
        return Err(RuntimeError::protocol("chunk_tables must be positive"));
    }
    Ok(())
}

/// Accounting for the input-label OT phase, whichever mode ran.
#[derive(Debug, Default, Clone, Copy)]
struct OtOutcome {
    /// Evaluator-input labels delivered.
    transfers: u64,
    /// Public-key OTs performed (per input in base mode, the ~κ
    /// bootstrap in extended mode).
    base_ots: u64,
    /// Hash-evaluated extension OTs performed (0 in base mode).
    ext_ots: u64,
    /// Nanoseconds blocked waiting for the peer's OT messages.
    io_stall_ns: u64,
}

/// Chunks the garbler produced ahead of the streaming phase, while the
/// OT extension's round trips were in flight, plus the compute time
/// they cost (spent under the OT wall, reported under the stream's
/// compute budget).
#[derive(Debug, Default)]
struct PrefillStats {
    chunks: Vec<Vec<[Block; 2]>>,
    compute_ns: u64,
}

/// Drives the extended-OT rounds while a scoped stage garbles the first
/// `depth` ring chunks: the extension's network round trips hide the
/// stream's warm-up compute, so the input phase overlaps the first
/// chunks of garbling instead of serializing in front of them. The
/// prefilled chunks ship (in order) when the streaming phase opens.
/// `depth == 0` (serial sessions) skips the overlap entirely.
fn ot_send_extended_overlapped<C: Channel + ?Sized, R: Rng + ?Sized>(
    garbler: &mut StreamingGarbler<'_>,
    pairs: &[(Block, Block)],
    rng: &mut R,
    channel: &mut C,
    chunk_tables: usize,
    depth: usize,
) -> Result<(OtOutcome, PrefillStats), RuntimeError> {
    if depth == 0 {
        return Ok((ot_send_extended(pairs, rng, channel)?, PrefillStats::default()));
    }
    let mut prefill = PrefillStats::default();
    let outcome = std::thread::scope(|scope| {
        let stage = scope.spawn(|| {
            let mut pre = PrefillStats::default();
            while pre.chunks.len() < depth {
                let mut chunk = Vec::with_capacity(chunk_tables.min(CHUNK_BUFFER_CAP));
                let t = Instant::now();
                let more = garbler.next_tables_into(chunk_tables, &mut chunk);
                pre.compute_ns += t.elapsed().as_nanos() as u64;
                if !more {
                    break;
                }
                if !chunk.is_empty() {
                    pre.chunks.push(chunk);
                }
            }
            pre
        });
        let outcome = ot_send_extended(pairs, rng, channel);
        prefill = stage.join().expect("prefill garbling stage panicked");
        outcome
    })?;
    Ok((outcome, prefill))
}

/// Maps a typed OT-layer failure to the session's protocol error (it
/// reached us from the trust boundary: every [`haac_gc::OtError`] here
/// is caused by peer-sent bytes).
#[cfg(feature = "insecure-ot")]
fn ot_protocol_error(e: haac_gc::OtError) -> RuntimeError {
    RuntimeError::protocol(format!("OT: {e}"))
}

#[cfg(feature = "insecure-ot")]
fn ot_send<C: Channel + ?Sized, R: Rng + ?Sized>(
    pairs: &[(Block, Block)],
    rng: &mut R,
    channel: &mut C,
) -> Result<OtOutcome, RuntimeError> {
    use haac_gc::ot::base::OtSender;

    let sender = OtSender::new(rng);
    write_message(
        channel,
        &Message::OtSetup { point: sender.public_point(), nonce: sender.nonce().into() },
    )?;
    channel.flush()?;

    let waited = Instant::now();
    let Message::OtPoints(points) = expect_message(channel, "OtPoints")? else { unreachable!() };
    let io_stall_ns = waited.elapsed().as_nanos() as u64;
    if points.len() != pairs.len() {
        return Err(RuntimeError::protocol("one OT point per evaluator input required"));
    }
    // `encrypt` rejects out-of-group points itself: a zero point would
    // collapse both branch keys to a public value, handing the peer
    // both labels (and Δ).
    let cts = sender.encrypt(&points, pairs).map_err(ot_protocol_error)?;
    write_message(channel, &Message::OtCiphertexts(cts))?;
    Ok(OtOutcome {
        transfers: pairs.len() as u64,
        base_ots: pairs.len() as u64,
        ext_ots: 0,
        io_stall_ns,
    })
}

#[cfg(feature = "insecure-ot")]
fn ot_receive<C: Channel + ?Sized, R: Rng + ?Sized>(
    evaluator_bits: &[bool],
    rng: &mut R,
    channel: &mut C,
) -> Result<(Vec<Block>, OtOutcome), RuntimeError> {
    use haac_gc::ot::base::OtReceiver;

    let waited = Instant::now();
    let Message::OtSetup { point, nonce } = expect_message(channel, "OtSetup")? else {
        unreachable!()
    };
    let mut io_stall_ns = waited.elapsed().as_nanos() as u64;
    // `new` rejects an out-of-group setup point itself: a zero S would
    // make R_i = 0 exactly when c_i = 1, leaking every choice bit.
    let receiver = OtReceiver::new(rng, point, Block::from(nonce), evaluator_bits)
        .map_err(ot_protocol_error)?;
    write_message(channel, &Message::OtPoints(receiver.blinded_points()))?;
    channel.flush()?;

    let waited = Instant::now();
    let Message::OtCiphertexts(pairs) = expect_message(channel, "OtCiphertexts")? else {
        unreachable!()
    };
    io_stall_ns += waited.elapsed().as_nanos() as u64;
    let labels = receiver.decrypt(&pairs).map_err(ot_protocol_error)?;
    Ok((
        labels,
        OtOutcome {
            transfers: evaluator_bits.len() as u64,
            base_ots: evaluator_bits.len() as u64,
            ext_ots: 0,
            io_stall_ns,
        },
    ))
}

/// Garbler side of the IKNP-style extension: ~κ base OTs with the roles
/// *reversed* (this side receives, choosing with its secret κ-bit
/// string) bootstrap per-column PRG seeds, then every evaluator input
/// label ships under one batched hash of a transposed matrix row — no
/// public-key work scales with the input count.
#[cfg(feature = "insecure-ot")]
fn ot_send_extended<C: Channel + ?Sized, R: Rng + ?Sized>(
    pairs: &[(Block, Block)],
    rng: &mut R,
    channel: &mut C,
) -> Result<OtOutcome, RuntimeError> {
    use haac_gc::ot::base::OtReceiver;
    use haac_gc::{OtExtSender, OT_EXT_KAPPA};

    let ext = OtExtSender::new(rng);

    // Base-OT bootstrap, reversed: the evaluator opens as base-OT
    // sender and this side receives one PRG seed per extension column.
    let waited = Instant::now();
    let Message::OtSetup { point, nonce } = expect_message(channel, "OtSetup")? else {
        unreachable!()
    };
    let mut io_stall_ns = waited.elapsed().as_nanos() as u64;
    let receiver = OtReceiver::new(rng, point, Block::from(nonce), ext.choice_bits())
        .map_err(ot_protocol_error)?;
    write_message(channel, &Message::OtPoints(receiver.blinded_points()))?;
    channel.flush()?;

    let waited = Instant::now();
    let Message::OtCiphertexts(cts) = expect_message(channel, "OtCiphertexts")? else {
        unreachable!()
    };
    io_stall_ns += waited.elapsed().as_nanos() as u64;
    if cts.len() != OT_EXT_KAPPA {
        return Err(RuntimeError::protocol("one base-OT seed pair per extension column required"));
    }
    let seeds = receiver.decrypt(&cts).map_err(ot_protocol_error)?;

    let waited = Instant::now();
    let Message::OtExtMatrix(u_matrix) = expect_message(channel, "OtExtMatrix")? else {
        unreachable!()
    };
    io_stall_ns += waited.elapsed().as_nanos() as u64;
    let masked = ext.process(&seeds, &u_matrix, pairs).map_err(ot_protocol_error)?;
    // Unflushed on purpose: the streaming phase's first flush carries
    // the masked labels, exactly like the base path's ciphertexts.
    write_message(channel, &Message::OtExtLabels(masked))?;
    Ok(OtOutcome {
        transfers: pairs.len() as u64,
        base_ots: OT_EXT_KAPPA as u64,
        ext_ots: pairs.len() as u64,
        io_stall_ns,
    })
}

/// Evaluator side of the extension: this side plays base-OT *sender*
/// (delivering seed pairs), ships the masked choice matrix, and unmasks
/// its chosen labels from one hash per input.
#[cfg(feature = "insecure-ot")]
fn ot_receive_extended<C: Channel + ?Sized, R: Rng + ?Sized>(
    evaluator_bits: &[bool],
    rng: &mut R,
    channel: &mut C,
) -> Result<(Vec<Block>, OtOutcome), RuntimeError> {
    use haac_gc::ot::base::OtSender;
    use haac_gc::{OtExtReceiver, OT_EXT_KAPPA};

    let mut ext = OtExtReceiver::new(rng, evaluator_bits);

    let sender = OtSender::new(rng);
    write_message(
        channel,
        &Message::OtSetup { point: sender.public_point(), nonce: sender.nonce().into() },
    )?;
    channel.flush()?;

    let waited = Instant::now();
    let Message::OtPoints(points) = expect_message(channel, "OtPoints")? else { unreachable!() };
    let mut io_stall_ns = waited.elapsed().as_nanos() as u64;
    if points.len() != OT_EXT_KAPPA {
        return Err(RuntimeError::protocol("one base-OT point per extension column required"));
    }
    let cts = sender.encrypt(&points, ext.seed_pairs()).map_err(ot_protocol_error)?;
    write_message(channel, &Message::OtCiphertexts(cts))?;
    write_message(channel, &Message::OtExtMatrix(ext.u_matrix()))?;
    channel.flush()?;

    let waited = Instant::now();
    let Message::OtExtLabels(masked) = expect_message(channel, "OtExtLabels")? else {
        unreachable!()
    };
    io_stall_ns += waited.elapsed().as_nanos() as u64;
    let labels = ext.decrypt(&masked).map_err(ot_protocol_error)?;
    Ok((
        labels,
        OtOutcome {
            transfers: evaluator_bits.len() as u64,
            base_ots: OT_EXT_KAPPA as u64,
            ext_ots: evaluator_bits.len() as u64,
            io_stall_ns,
        },
    ))
}

#[cfg(not(feature = "insecure-ot"))]
fn ot_send<C: Channel + ?Sized, R: Rng + ?Sized>(
    _pairs: &[(Block, Block)],
    _rng: &mut R,
    _channel: &mut C,
) -> Result<OtOutcome, RuntimeError> {
    Err(RuntimeError::protocol(
        "two-party sessions need a base OT; enable the `insecure-ot` feature",
    ))
}

#[cfg(not(feature = "insecure-ot"))]
fn ot_receive<C: Channel + ?Sized, R: Rng + ?Sized>(
    _evaluator_bits: &[bool],
    _rng: &mut R,
    _channel: &mut C,
) -> Result<(Vec<Block>, OtOutcome), RuntimeError> {
    Err(RuntimeError::protocol(
        "two-party sessions need a base OT; enable the `insecure-ot` feature",
    ))
}

#[cfg(not(feature = "insecure-ot"))]
fn ot_send_extended<C: Channel + ?Sized, R: Rng + ?Sized>(
    _pairs: &[(Block, Block)],
    _rng: &mut R,
    _channel: &mut C,
) -> Result<OtOutcome, RuntimeError> {
    Err(RuntimeError::protocol(
        "two-party sessions need a base OT; enable the `insecure-ot` feature",
    ))
}

#[cfg(not(feature = "insecure-ot"))]
fn ot_receive_extended<C: Channel + ?Sized, R: Rng + ?Sized>(
    _evaluator_bits: &[bool],
    _rng: &mut R,
    _channel: &mut C,
) -> Result<(Vec<Block>, OtOutcome), RuntimeError> {
    Err(RuntimeError::protocol(
        "two-party sessions need a base OT; enable the `insecure-ot` feature",
    ))
}

/// Runs a complete session in-process: garbler and evaluator threads
/// joined by a [`MemChannel`](crate::MemChannel) pair.
///
/// Returns `(garbler_report, evaluator_report)`.
///
/// # Errors
///
/// Propagates whichever party's error surfaced (if both failed, the
/// garbler's).
///
/// # Panics
///
/// Panics if a party thread panics.
///
/// # Examples
///
/// ```
/// use haac_circuit::Builder;
/// use haac_runtime::{run_local_session, SessionConfig};
///
/// let mut b = Builder::new();
/// let alice = b.input_garbler(16);
/// let bob = b.input_evaluator(16);
/// let richer = b.gt_u(&alice, &bob);
/// let c = b.finish(vec![richer]).unwrap();
///
/// let (g, e) = run_local_session(
///     &c,
///     &haac_circuit::to_bits(40_000, 16),
///     &haac_circuit::to_bits(35_000, 16),
///     7,
///     &SessionConfig::for_circuit(&c),
/// )
/// .unwrap();
/// assert_eq!(g.outputs, vec![true]);
/// assert_eq!(e.outputs, vec![true]);
/// ```
pub fn run_local_session(
    circuit: &Circuit,
    garbler_bits: &[bool],
    evaluator_bits: &[bool],
    seed: u64,
    config: &SessionConfig,
) -> Result<(SessionReport, SessionReport), RuntimeError> {
    let (garbler_channel, evaluator_channel) = crate::channel::MemChannel::pair();
    run_session_pair(
        circuit,
        garbler_bits,
        evaluator_bits,
        seed,
        config,
        garbler_channel,
        evaluator_channel,
    )
}

/// Runs a complete session over a real loopback TCP socket: an
/// evaluator thread listens on an ephemeral `127.0.0.1` port, the
/// garbler connects, and both run the full streamed protocol.
///
/// Returns `(garbler_report, evaluator_report)`.
///
/// # Errors
///
/// Propagates socket and session failures.
///
/// # Panics
///
/// Panics if a party thread panics.
pub fn run_tcp_session(
    circuit: &Circuit,
    garbler_bits: &[bool],
    evaluator_bits: &[bool],
    seed: u64,
    config: &SessionConfig,
) -> Result<(SessionReport, SessionReport), RuntimeError> {
    use crate::channel::TcpChannel;
    use std::net::{TcpListener, TcpStream};

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    std::thread::scope(|scope| {
        let accept = scope.spawn(move || -> Result<TcpChannel, RuntimeError> {
            let (stream, _) = listener.accept()?;
            Ok(TcpChannel::from_stream(stream)?)
        });
        let garbler_channel = TcpChannel::from_stream(TcpStream::connect(addr)?)?;
        let evaluator_channel = accept.join().expect("accept thread panicked")?;
        run_session_pair(
            circuit,
            garbler_bits,
            evaluator_bits,
            seed,
            config,
            garbler_channel,
            evaluator_channel,
        )
    })
}

/// Drives both roles on scoped threads over an already-paired transport.
/// The one `config` governs both sides (the evaluator shares the
/// garbler's plan and pipeline mode — no second lowering).
fn run_session_pair<C: Channel + Send>(
    circuit: &Circuit,
    garbler_bits: &[bool],
    evaluator_bits: &[bool],
    seed: u64,
    config: &SessionConfig,
    mut garbler_channel: C,
    mut evaluator_channel: C,
) -> Result<(SessionReport, SessionReport), RuntimeError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    std::thread::scope(|scope| {
        let garbler = scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            run_garbler(circuit, garbler_bits, &mut rng, config, &mut garbler_channel)
        });
        let evaluator = scope.spawn(move || {
            // Independent randomness for the receiver's OT blinding.
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
            run_evaluator_with(circuit, evaluator_bits, &mut rng, config, &mut evaluator_channel)
        });
        let garbler_report = garbler.join().expect("garbler thread panicked");
        let evaluator_report = evaluator.join().expect("evaluator thread panicked");
        Ok((garbler_report?, evaluator_report?))
    })
}

/// Bounded store of the framed wire bytes of every
/// not-yet-acknowledged stream frame (table chunks and the
/// output-decode tail), addressed by sequence number. Resume is **byte
/// replay** out of this buffer: the exact bytes are re-sent and labels
/// are never re-derived, so the one-time-label invariant holds by
/// construction.
struct ReplayBuffer {
    frames: VecDeque<(u64, Vec<u8>)>,
    /// Sequence number the next pushed frame gets.
    next_seq: u64,
    /// Cumulative ack cursor: every frame below it has been released.
    acked: u64,
}

impl ReplayBuffer {
    fn new() -> ReplayBuffer {
        ReplayBuffer { frames: VecDeque::new(), next_seq: 0, acked: 0 }
    }

    /// Stores a frame's wire bytes under the next sequence number.
    fn push(&mut self, bytes: Vec<u8>) {
        self.frames.push_back((self.next_seq, bytes));
        self.next_seq += 1;
    }

    /// Applies a cumulative (exclusive) ack: frames below `upto` are
    /// released. Stale cursors are ignored; a cursor past everything
    /// produced is a protocol violation.
    fn ack(&mut self, upto: u64) -> Result<(), RuntimeError> {
        if upto > self.next_seq {
            return Err(RuntimeError::protocol(format!(
                "peer acknowledged stream cursor {upto} but only {} frames were produced",
                self.next_seq
            )));
        }
        if upto > self.acked {
            self.acked = upto;
            while self.frames.front().is_some_and(|(seq, _)| *seq < upto) {
                self.frames.pop_front();
            }
        }
        Ok(())
    }

    /// Frames produced but not yet acknowledged.
    fn unacked(&self) -> u64 {
        self.next_seq - self.acked
    }
}

/// Counters a resumable driver accumulates across reconnects.
#[derive(Debug, Default, Clone, Copy)]
struct ResumeCounters {
    resumes: u64,
    replayed_frames: u64,
}

/// Folds one connection's traffic counters into a running total, so a
/// resumed session's report covers every channel it ran over.
fn absorb_stats(total: &mut ChannelStats, stats: &ChannelStats) {
    total.bytes_sent += stats.bytes_sent;
    total.bytes_received += stats.bytes_received;
    total.flushes += stats.flushes;
}

/// Recovers the garbler side of a resumable session after a transport
/// failure: the dead channel is dropped first (its traffic folded into
/// `carried`; the peer only observes the disconnect once the channel is
/// gone), then the `resume` callback is asked for a fresh channel plus
/// the evaluator's requested cursor, and every buffered frame at or
/// past that cursor is replayed byte-for-byte. Failures during the
/// replay re-consult the callback; the callback returning `None` makes
/// the pending failure terminal, as does any non-resumable failure.
#[allow(clippy::too_many_arguments)]
fn garbler_recover<C, F>(
    dead: C,
    err: RuntimeError,
    phase: SessionPhase,
    buffer: &mut ReplayBuffer,
    deadlines: &SessionDeadlines,
    carried: &mut ChannelStats,
    counters: &mut ResumeCounters,
    resume: &mut F,
) -> Result<C, RuntimeError>
where
    C: Channel,
    F: FnMut(&RuntimeError, u64) -> Option<(C, u64)>,
{
    let mut err = err.in_phase(phase);
    absorb_stats(carried, &dead.stats());
    drop(dead);
    loop {
        if !err.resume_safe() {
            return Err(err);
        }
        let Some((mut channel, next_seq)) = resume(&err, buffer.next_seq) else {
            return Err(err);
        };
        match garbler_replay(&mut channel, next_seq, buffer, deadlines, counters) {
            Ok(()) => return Ok(channel),
            Err(replay_err) => {
                absorb_stats(carried, &channel.stats());
                drop(channel);
                err = replay_err;
            }
        }
    }
}

/// Confirms the evaluator's cursor with a `ResumeAck` on a fresh
/// channel and replays every buffered frame at or past it. Frames below
/// the cursor are implicitly acknowledged — the evaluator vouching for
/// them is as good as an ack. The stream deadline is re-armed on the
/// new channel, so the per-chunk progress budget is per connection, not
/// cumulative across reconnects.
fn garbler_replay<C: Channel>(
    channel: &mut C,
    next_seq: u64,
    buffer: &mut ReplayBuffer,
    deadlines: &SessionDeadlines,
    counters: &mut ResumeCounters,
) -> Result<(), RuntimeError> {
    if next_seq > buffer.next_seq {
        return Err(RuntimeError::protocol(format!(
            "resume cursor {next_seq} is past the {} frames produced",
            buffer.next_seq
        ))
        .in_phase(SessionPhase::Stream));
    }
    if next_seq < buffer.acked {
        return Err(RuntimeError::protocol(format!(
            "resume cursor {next_seq} is below the acknowledged cursor {}: those bytes were \
             released and cannot be replayed",
            buffer.acked
        ))
        .in_phase(SessionPhase::Stream));
    }
    arm_phase(channel, SessionPhase::Stream, deadlines)?;
    (|| -> Result<(), RuntimeError> {
        write_message(channel, &Message::ResumeAck { from_seq: next_seq })?;
        buffer.ack(next_seq)?;
        for (seq, bytes) in &buffer.frames {
            debug_assert!(*seq >= next_seq);
            channel.send(bytes)?;
            counters.replayed_frames += 1;
        }
        Ok(channel.flush()?)
    })()
    .map_err(|e| e.in_phase(SessionPhase::Stream))?;
    counters.resumes += 1;
    Ok(())
}

/// Buffers a frame's bytes in the replay buffer, then sends and flushes
/// them — recovering through the resume callback on a transport
/// failure. After a successful recovery the frame has already been
/// replayed out of the buffer, so the send is not repeated.
#[allow(clippy::too_many_arguments)]
fn ship_frame<C, F>(
    mut channel: C,
    frame: Vec<u8>,
    phase: SessionPhase,
    buffer: &mut ReplayBuffer,
    deadlines: &SessionDeadlines,
    carried: &mut ChannelStats,
    counters: &mut ResumeCounters,
    resume: &mut F,
) -> Result<C, RuntimeError>
where
    C: Channel,
    F: FnMut(&RuntimeError, u64) -> Option<(C, u64)>,
{
    buffer.push(frame);
    let sent = {
        let (_, bytes) = buffer.frames.back().expect("frame was just pushed");
        channel.send(bytes).and_then(|()| channel.flush())
    };
    match sent {
        Ok(()) => Ok(channel),
        Err(e) => {
            garbler_recover(channel, e.into(), phase, buffer, deadlines, carried, counters, resume)
        }
    }
}

/// Runs the garbler side of a **resumable** streaming session.
///
/// Every stream frame's wire bytes (table chunks and the output-decode
/// tail, in one sequence space) are retained in a bounded replay buffer
/// until the evaluator's periodic cumulative `ChunkAck` releases them;
/// the buffer is capped at two ack windows (`2 × ack_interval` frames)
/// and a garbler that outruns the acks blocks on the next one —
/// backpressure, not growth. A transport failure past the retry-safety
/// boundary ([`RuntimeError::resume_safe`]) consults the `resume`
/// callback instead of tearing down: the callback receives the failure
/// and the number of frames produced so far, and returns a reconnected
/// channel plus the evaluator's requested cursor (learned from the
/// peer's `Resume` frame, which the callback — not this driver — is
/// expected to have consumed), or `None` to give up. Resume is byte
/// replay: unacknowledged frames are re-sent verbatim and nothing is
/// ever re-garbled, so the one-time-label invariant holds by
/// construction.
///
/// Streaming is serial (no compute/I-O overlap): the replay-buffer
/// invariant — bytes are buffered before they are sent — stays
/// trivially true without threading frames through the pipeline ring,
/// at the cost of the overlap the pipelined driver buys.
///
/// # Errors
///
/// Fails on pre-stream failures (which are retry-safe, never resumed),
/// on protocol violations, and on resumable failures once the callback
/// declines to provide a new channel.
pub fn run_garbler_resumable<C, R, F>(
    circuit: &Circuit,
    garbler_bits: &[bool],
    rng: &mut R,
    config: &SessionConfig,
    mut channel: C,
    resume: F,
) -> Result<SessionReport, RuntimeError>
where
    C: Channel,
    R: Rng + ?Sized,
    F: FnMut(&RuntimeError, u64) -> Option<(C, u64)>,
{
    if garbler_bits.len() != circuit.garbler_inputs() as usize {
        return Err(RuntimeError::protocol(format!(
            "garbler input width {} does not match circuit ({})",
            garbler_bits.len(),
            circuit.garbler_inputs()
        )));
    }
    if let Some(plan) = &config.plan {
        check_plan(plan, circuit)?;
    }
    let start = Instant::now();
    write_resumable_header(circuit, config, &mut channel)?;
    let plan = config.plan.clone();
    let garbler = match &plan {
        Some(plan) => StreamingGarbler::with_plan(&plan.program, rng, config.scheme),
        None => StreamingGarbler::new(circuit, rng, config.scheme),
    };
    stream_garbler_resumable(circuit, garbler_bits, garbler, rng, config, channel, resume, start)
}

/// Runs the garbler side of a resumable session from a **banked
/// pre-garbled instance**: stored tables are replayed byte-for-byte
/// while only the handshake and OT/input phase compute online. The wire
/// protocol, ack/replay machinery, and park/resume behavior are exactly
/// [`run_garbler_resumable`]'s — the evaluator cannot tell a banked
/// session from an online-garbled one (and must not: the outputs are
/// identical by construction, only Δ and the labels differ).
///
/// Takes the instance by value: a claimed instance is consumed whether
/// the session succeeds or fails, so one instance can never label two
/// evaluators (FreeXOR one-time-use, enforced by move semantics).
///
/// # Errors
///
/// Fails like [`run_garbler_resumable`], plus a protocol error when the
/// instance's dimensions (inputs / tables / outputs) do not match
/// `circuit` — a stale or mis-keyed bank entry is refused before any
/// byte is streamed.
pub fn run_garbler_banked<C, R, F>(
    circuit: &Circuit,
    garbler_bits: &[bool],
    instance: PlanGarbling,
    rng: &mut R,
    config: &SessionConfig,
    mut channel: C,
    resume: F,
) -> Result<SessionReport, RuntimeError>
where
    C: Channel,
    R: Rng + ?Sized,
    F: FnMut(&RuntimeError, u64) -> Option<(C, u64)>,
{
    if garbler_bits.len() != circuit.garbler_inputs() as usize {
        return Err(RuntimeError::protocol(format!(
            "garbler input width {} does not match circuit ({})",
            garbler_bits.len(),
            circuit.garbler_inputs()
        )));
    }
    if instance.input_zero_labels.len() != circuit.num_inputs() as usize
        || instance.tables.len() != circuit.num_and_gates()
        || instance.output_decode.len() != circuit.outputs().len()
    {
        return Err(RuntimeError::protocol(format!(
            "banked instance shape ({} inputs, {} tables, {} outputs) does not match the \
             circuit ({}, {}, {}) — stale or mis-keyed bank entry",
            instance.input_zero_labels.len(),
            instance.tables.len(),
            instance.output_decode.len(),
            circuit.num_inputs(),
            circuit.num_and_gates(),
            circuit.outputs().len(),
        )));
    }
    let start = Instant::now();
    write_resumable_header(circuit, config, &mut channel)?;
    let garbler = BankedGarbler::new(instance);
    stream_garbler_resumable(circuit, garbler_bits, garbler, rng, config, channel, resume, start)
}

/// The resumable session header: identical for online and banked
/// garblers — which is the point, the evaluator drives one protocol.
fn write_resumable_header<C: Channel>(
    circuit: &Circuit,
    config: &SessionConfig,
    channel: &mut C,
) -> Result<(), RuntimeError> {
    arm_phase(channel, SessionPhase::Handshake, &config.deadlines)?;
    write_message(
        channel,
        &Message::Header(SessionHeader {
            garbler_inputs: circuit.garbler_inputs(),
            evaluator_inputs: circuit.evaluator_inputs(),
            num_gates: circuit.num_gates() as u64,
            num_tables: circuit.num_and_gates() as u64,
            scheme: config.scheme,
            window_wires: config.window.sww_wires(),
            chunk_tables: config.chunk_tables() as u32,
            reorder: config.reorder(),
            ot_mode: config.ot_mode,
            ack_interval: config.ack_interval.max(1),
        }),
    )
    .map_err(|e| e.in_phase(SessionPhase::Handshake))
}

/// What the resumable streaming loop needs from a garbler: input labels
/// until streaming starts, chunks in stream order, and a consuming
/// finish. [`StreamingGarbler`] garbles chunks online;
/// [`BankedGarbler`] replays them from storage — the loop cannot tell
/// the difference, which is what keeps the two paths wire-identical.
pub trait GarblerSource {
    /// Active labels for the garbler's own input bits.
    fn garbler_input_labels(&self, garbler_bits: &[bool]) -> Vec<Block>;
    /// The `(zero, one)` label pair of a primary input wire (OT fodder).
    fn input_label_pair(&self, wire: haac_circuit::WireId) -> (Block, Block);
    /// Produces the next chunk of up to `max_tables` tables; `false`
    /// once the stream is exhausted.
    fn next_tables_into(&mut self, max_tables: usize, tables: &mut Vec<[Block; 2]>) -> bool;
    /// Current OoRW-queue occupancy (0 for replay).
    fn oor_queue_len(&self) -> usize;
    /// Ends the stream, yielding the decode string and meters.
    fn finish(self) -> GarblerFinish;
}

impl GarblerSource for StreamingGarbler<'_> {
    fn garbler_input_labels(&self, garbler_bits: &[bool]) -> Vec<Block> {
        StreamingGarbler::garbler_input_labels(self, garbler_bits)
    }
    fn input_label_pair(&self, wire: haac_circuit::WireId) -> (Block, Block) {
        StreamingGarbler::input_label_pair(self, wire)
    }
    fn next_tables_into(&mut self, max_tables: usize, tables: &mut Vec<[Block; 2]>) -> bool {
        StreamingGarbler::next_tables_into(self, max_tables, tables)
    }
    fn oor_queue_len(&self) -> usize {
        StreamingGarbler::oor_queue_len(self)
    }
    fn finish(self) -> GarblerFinish {
        StreamingGarbler::finish(self)
    }
}

impl GarblerSource for BankedGarbler {
    fn garbler_input_labels(&self, garbler_bits: &[bool]) -> Vec<Block> {
        BankedGarbler::garbler_input_labels(self, garbler_bits)
    }
    fn input_label_pair(&self, wire: haac_circuit::WireId) -> (Block, Block) {
        BankedGarbler::input_label_pair(self, wire)
    }
    fn next_tables_into(&mut self, max_tables: usize, tables: &mut Vec<[Block; 2]>) -> bool {
        BankedGarbler::next_tables_into(self, max_tables, tables)
    }
    fn oor_queue_len(&self) -> usize {
        BankedGarbler::oor_queue_len(self)
    }
    fn finish(self) -> GarblerFinish {
        BankedGarbler::finish(self)
    }
}

/// The post-header body of a resumable garbler session, generic over
/// where tables come from (online garbling or bank replay): input-label
/// delivery, OT, the ack-bounded streaming loop with byte replay on
/// failure, the decode tail, and the shared outputs.
#[allow(clippy::too_many_arguments)]
fn stream_garbler_resumable<G, C, R, F>(
    circuit: &Circuit,
    garbler_bits: &[bool],
    mut garbler: G,
    rng: &mut R,
    config: &SessionConfig,
    mut channel: C,
    mut resume: F,
    start: Instant,
) -> Result<SessionReport, RuntimeError>
where
    G: GarblerSource,
    C: Channel,
    R: Rng + ?Sized,
    F: FnMut(&RuntimeError, u64) -> Option<(C, u64)>,
{
    let chunk_tables = config.chunk_tables();
    let ack_interval = config.ack_interval.max(1);
    let buffer_cap = u64::from(ack_interval) * 2;
    write_message(
        &mut channel,
        &Message::GarblerInputs(garbler.garbler_input_labels(garbler_bits)),
    )
    .map_err(|e| e.in_phase(SessionPhase::Handshake))?;

    let evaluator_pairs: Vec<(Block, Block)> = (0..circuit.evaluator_inputs())
        .map(|i| garbler.input_label_pair(circuit.garbler_inputs() + i))
        .collect();
    let live = config.telemetry.as_deref().filter(|_| haac_telemetry::enabled());
    arm_phase(&mut channel, SessionPhase::Ot, &config.deadlines)?;
    let t = Instant::now();
    let ot = match config.ot_mode {
        OtMode::Base => ot_send(&evaluator_pairs, rng, &mut channel)
            .map_err(|e| e.in_phase(SessionPhase::Ot))?,
        OtMode::Extended => {
            // The extension opens with a receive (the evaluator's
            // OtSetup), so the queued header must actually go out.
            channel.flush().map_err(|e| RuntimeError::from(e).in_phase(SessionPhase::Ot))?;
            ot_send_extended(&evaluator_pairs, rng, &mut channel)
                .map_err(|e| e.in_phase(SessionPhase::Ot))?
        }
    };
    let ot_ns = t.elapsed().as_nanos() as u64;
    if let Some(tel) = live {
        tel.ot_ns.record(ot_ns);
        tel.base_ots.add(ot.base_ots);
        tel.ext_ots.add(ot.ext_ots);
        tel.ot_rate.add(ot.transfers);
    }

    arm_phase(&mut channel, SessionPhase::Stream, &config.deadlines)?;
    let stream_start = Instant::now();
    let mut stats = StreamStats::default();
    let mut buffer = ReplayBuffer::new();
    let mut counters = ResumeCounters::default();
    let mut carried = ChannelStats::default();
    let mut chunk: Vec<[Block; 2]> = Vec::with_capacity(chunk_tables.min(CHUNK_BUFFER_CAP));
    loop {
        // Bounded replay buffer: block for acks before garbling on.
        while buffer.unacked() >= buffer_cap {
            match read_message(&mut channel) {
                Ok(Message::ChunkAck { upto_seq }) => {
                    buffer.ack(upto_seq).map_err(|e| e.in_phase(SessionPhase::Stream))?;
                }
                Ok(other) => {
                    return Err(RuntimeError::protocol(format!(
                        "expected ChunkAck, received {}",
                        other.name()
                    ))
                    .in_phase(SessionPhase::Stream));
                }
                Err(e) => {
                    channel = garbler_recover(
                        channel,
                        e,
                        SessionPhase::Stream,
                        &mut buffer,
                        &config.deadlines,
                        &mut carried,
                        &mut counters,
                        &mut resume,
                    )?;
                }
            }
        }
        let t = Instant::now();
        let more = garbler.next_tables_into(chunk_tables, &mut chunk);
        let compute_ns = t.elapsed().as_nanos() as u64;
        stats.compute_ns += compute_ns;
        if !more {
            break;
        }
        if chunk.is_empty() {
            continue;
        }
        stats.tables += chunk.len() as u64;
        stats.chunks += 1;
        if let Some(tel) = live {
            tel.chunk_compute_ns.record(compute_ns);
            tel.oor_occupancy.record(garbler.oor_queue_len() as u64);
        }
        let frame = encode_tables_frame(buffer.next_seq, &chunk)
            .map_err(|e| e.in_phase(SessionPhase::Stream))?;
        let t = Instant::now();
        channel = ship_frame(
            channel,
            frame,
            SessionPhase::Stream,
            &mut buffer,
            &config.deadlines,
            &mut carried,
            &mut counters,
            &mut resume,
        )?;
        let io_ns = t.elapsed().as_nanos() as u64;
        stats.io_ns += io_ns;
        if let Some(tel) = live {
            tel.chunk_io_ns.record(io_ns);
            tel.tables.add(chunk.len() as u64);
            tel.table_rate.add(chunk.len() as u64);
        }
    }
    stats.wall_ns = stream_start.elapsed().as_nanos() as u64;

    // The output-decode tail rides in the same sequence space (cursor =
    // chunk count), so a cut between the last chunk and the decode — or
    // between the decode and the shared outputs — replays exactly the
    // frames the evaluator is missing.
    let finish = garbler.finish();
    let decode_frame = encode_frame(&Message::OutputDecode(finish.output_decode))
        .map_err(|e| e.in_phase(SessionPhase::Output))?;
    channel = ship_frame(
        channel,
        decode_frame,
        SessionPhase::Output,
        &mut buffer,
        &config.deadlines,
        &mut carried,
        &mut counters,
        &mut resume,
    )?;

    let outputs = loop {
        match read_message(&mut channel) {
            // Late acks from the stream's tail are still applied — they
            // release replay bytes held for a resume that never came.
            Ok(Message::ChunkAck { upto_seq }) => {
                buffer.ack(upto_seq).map_err(|e| e.in_phase(SessionPhase::Output))?;
            }
            Ok(Message::Outputs(outputs)) => break outputs,
            Ok(other) => {
                return Err(RuntimeError::protocol(format!(
                    "expected Outputs, received {}",
                    other.name()
                ))
                .in_phase(SessionPhase::Output));
            }
            Err(e) => {
                channel = garbler_recover(
                    channel,
                    e,
                    SessionPhase::Output,
                    &mut buffer,
                    &config.deadlines,
                    &mut carried,
                    &mut counters,
                    &mut resume,
                )?;
            }
        }
    };
    if outputs.len() != circuit.outputs().len() {
        return Err(RuntimeError::protocol(format!(
            "evaluator shared {} outputs, circuit has {}",
            outputs.len(),
            circuit.outputs().len()
        )));
    }

    let mut channel_stats = channel.stats();
    absorb_stats(&mut channel_stats, &carried);
    Ok(SessionReport {
        role: SessionRole::Garbler,
        outputs,
        bytes_sent: channel_stats.bytes_sent,
        bytes_received: channel_stats.bytes_received,
        flushes: channel_stats.flushes,
        table_chunks: stats.chunks,
        tables: stats.tables,
        peak_live_wires: finish.peak_live_wires,
        within_window: finish.peak_live_wires <= config.window.sww_wires() as usize,
        ot_transfers: ot.transfers,
        crypto: finish.crypto,
        compute_ns: stats.compute_ns,
        io_ns: stats.io_ns,
        stream_ns: stats.wall_ns,
        overlap_ratio: stats.overlap_ratio(),
        pipeline_depth: stats.depth,
        ot_ns,
        base_ots: ot.base_ots,
        ext_ots: ot.ext_ots,
        ot_io_stall_ns: ot.io_stall_ns,
        compute_stall_ns: stats.compute_stall_ns,
        io_stall_ns: stats.io_stall_ns,
        oor_queue_peak: finish.oor_queue_peak,
        resumes: counters.resumes,
        replayed_frames: counters.replayed_frames,
        elapsed: start.elapsed(),
    })
}

/// Recovers the evaluator side of a resumable session: the dead channel
/// is dropped first (its traffic folded into `carried`; the peer only
/// observes the disconnect once the channel is gone), then the `resume`
/// callback is asked for a fresh raw connection and the resume
/// handshake runs on it — this side sends `Resume{ticket, next_seq}`
/// and requires the garbler's `ResumeAck` to confirm exactly that
/// cursor; anything else means the replay would not continue
/// bit-identically and is fatal. Handshake failures re-consult the
/// callback; `None` makes the pending failure terminal.
#[allow(clippy::too_many_arguments)]
fn evaluator_recover<C, F>(
    dead: C,
    err: RuntimeError,
    phase: SessionPhase,
    ticket: u128,
    next_seq: u64,
    deadlines: &SessionDeadlines,
    carried: &mut ChannelStats,
    resumes: &mut u64,
    resume: &mut F,
) -> Result<C, RuntimeError>
where
    C: Channel,
    F: FnMut(&RuntimeError, u64) -> Option<C>,
{
    let mut err = err.in_phase(phase);
    absorb_stats(carried, &dead.stats());
    drop(dead);
    loop {
        if !err.resume_safe() {
            return Err(err);
        }
        let Some(mut channel) = resume(&err, next_seq) else {
            return Err(err);
        };
        let hello = (|| -> Result<(), RuntimeError> {
            // The chunk budget restarts with the connection.
            arm_phase(&mut channel, SessionPhase::Stream, deadlines)?;
            write_message(&mut channel, &Message::Resume { ticket, next_seq })?;
            channel.flush()?;
            let Message::ResumeAck { from_seq } = expect_message(&mut channel, "ResumeAck")? else {
                unreachable!()
            };
            if from_seq != next_seq {
                return Err(RuntimeError::protocol(format!(
                    "garbler resumed from cursor {from_seq}, this side asked for {next_seq}"
                )));
            }
            Ok(())
        })()
        .map_err(|e| e.in_phase(SessionPhase::Stream));
        match hello {
            Ok(()) => {
                *resumes += 1;
                return Ok(channel);
            }
            Err(hello_err) => {
                absorb_stats(carried, &channel.stats());
                drop(channel);
                err = hello_err;
            }
        }
    }
}

/// Runs the evaluator side of a **resumable** streaming session.
///
/// The slab/OoRW evaluation state lives on this side of the channel, so
/// it survives a transport swap by construction; what this driver adds
/// is the cursor protocol around it. Every `ack_interval` chunks (the
/// cadence the garbler announces in its header) the evaluator sends a
/// cumulative `ChunkAck` releasing the garbler's replay bytes. On a
/// resumable transport failure ([`RuntimeError::resume_safe`]) the
/// `resume` callback is asked for a fresh raw connection — it owns
/// reconnect policy and backoff, returning `None` to give up — and the
/// driver runs the resume handshake itself: `Resume{ticket, next_seq}`
/// out, `ResumeAck` back confirming the exact cursor, after which the
/// replayed bytes continue the stream bit-identically (the sequence
/// check fails loudly if they do not).
///
/// `ticket` is the opaque resume token the serving layer issued with
/// the session; pure-runtime peers just agree on a value out of band.
///
/// # Errors
///
/// Fails on pre-stream failures (retry-safe, never resumed), protocol
/// violations — including a garbler that announces `ack_interval` 0,
/// i.e. one that cannot resume — and resumable failures once the
/// callback declines to reconnect.
pub fn run_evaluator_resumable<C, R, F>(
    circuit: &Circuit,
    evaluator_bits: &[bool],
    rng: &mut R,
    config: &SessionConfig,
    mut channel: C,
    ticket: u128,
    mut resume: F,
) -> Result<SessionReport, RuntimeError>
where
    C: Channel,
    R: Rng + ?Sized,
    F: FnMut(&RuntimeError, u64) -> Option<C>,
{
    if evaluator_bits.len() != circuit.evaluator_inputs() as usize {
        return Err(RuntimeError::protocol(format!(
            "evaluator input width {} does not match circuit ({})",
            evaluator_bits.len(),
            circuit.evaluator_inputs()
        )));
    }
    if let Some(plan) = &config.plan {
        check_plan(plan, circuit)?;
    }
    let start = Instant::now();

    arm_phase(&mut channel, SessionPhase::Handshake, &config.deadlines)?;
    let Message::Header(header) =
        expect_message(&mut channel, "Header").map_err(|e| e.in_phase(SessionPhase::Handshake))?
    else {
        unreachable!()
    };
    validate_header(circuit, &header)?;
    if header.reorder != config.reorder() {
        return Err(RuntimeError::protocol(format!(
            "reorder mismatch: the garbler lowered with {}, this side with {}",
            header.reorder.label(),
            config.reorder().label()
        )));
    }
    if header.ot_mode != config.ot_mode {
        return Err(RuntimeError::protocol(format!(
            "OT mode mismatch: the garbler negotiated {}, this side {}",
            header.ot_mode.label(),
            config.ot_mode.label()
        )));
    }
    if header.ack_interval == 0 {
        // Fail fast instead of discovering at the first cut that the
        // peer kept no replay bytes.
        return Err(RuntimeError::protocol(
            "the garbler announced no ack interval: this session cannot be resumed",
        ));
    }

    let Message::GarblerInputs(garbler_labels) = expect_message(&mut channel, "GarblerInputs")
        .map_err(|e| e.in_phase(SessionPhase::Handshake))?
    else {
        unreachable!()
    };
    if garbler_labels.len() != circuit.garbler_inputs() as usize {
        return Err(RuntimeError::protocol("garbler label count mismatch"));
    }

    let live = config.telemetry.as_deref().filter(|_| haac_telemetry::enabled());
    arm_phase(&mut channel, SessionPhase::Ot, &config.deadlines)?;
    let t = Instant::now();
    let (own_labels, ot) = match header.ot_mode {
        OtMode::Base => ot_receive(evaluator_bits, rng, &mut channel),
        OtMode::Extended => ot_receive_extended(evaluator_bits, rng, &mut channel),
    }
    .map_err(|e| e.in_phase(SessionPhase::Ot))?;
    let ot_ns = t.elapsed().as_nanos() as u64;
    if let Some(tel) = live {
        tel.ot_ns.record(ot_ns);
        tel.base_ots.add(ot.base_ots);
        tel.ext_ots.add(ot.ext_ots);
        tel.ot_rate.add(ot.transfers);
    }

    let mut input_labels = garbler_labels;
    input_labels.extend(own_labels);
    let plan = config.plan.clone();
    let mut evaluator = match &plan {
        Some(plan) => StreamingEvaluator::with_plan(&plan.program, input_labels, header.scheme),
        None => StreamingEvaluator::new(circuit, input_labels, header.scheme),
    };

    arm_phase(&mut channel, SessionPhase::Stream, &config.deadlines)?;
    let stream_start = Instant::now();
    let mut stats = StreamStats::default();
    let mut carried = ChannelStats::default();
    let mut resumes = 0u64;
    let output_decode = loop {
        let t = Instant::now();
        match read_message(&mut channel) {
            Ok(Message::Tables { seq, tables: chunk }) => {
                let io_ns = t.elapsed().as_nanos() as u64;
                stats.io_ns += io_ns;
                check_seq(seq, stats.chunks).map_err(|e| e.in_phase(SessionPhase::Stream))?;
                stats.chunks += 1;
                stats.tables += chunk.len() as u64;
                let t = Instant::now();
                evaluator.feed(&chunk);
                let compute_ns = t.elapsed().as_nanos() as u64;
                stats.compute_ns += compute_ns;
                if let Some(tel) = live {
                    tel.chunk_io_ns.record(io_ns);
                    tel.chunk_compute_ns.record(compute_ns);
                    tel.oor_occupancy.record(evaluator.oor_queue_len() as u64);
                    tel.tables.add(chunk.len() as u64);
                    tel.table_rate.add(chunk.len() as u64);
                }
                if let Err(e) = maybe_ack(&mut channel, header.ack_interval, stats.chunks) {
                    // A failed ack is recovered like a failed receive:
                    // the resume implicitly acknowledges the cursor.
                    channel = evaluator_recover(
                        channel,
                        e,
                        SessionPhase::Stream,
                        ticket,
                        stats.chunks,
                        &config.deadlines,
                        &mut carried,
                        &mut resumes,
                        &mut resume,
                    )?;
                }
            }
            Ok(Message::OutputDecode(decode)) => break decode,
            Ok(other) => {
                return Err(RuntimeError::protocol(format!(
                    "expected Tables or OutputDecode, received {}",
                    other.name()
                ))
                .in_phase(SessionPhase::Stream));
            }
            Err(e) => {
                channel = evaluator_recover(
                    channel,
                    e,
                    SessionPhase::Stream,
                    ticket,
                    stats.chunks,
                    &config.deadlines,
                    &mut carried,
                    &mut resumes,
                    &mut resume,
                )?;
            }
        }
    };
    stats.wall_ns = stream_start.elapsed().as_nanos() as u64;
    if !evaluator.is_done() {
        return Err(RuntimeError::protocol(format!(
            "table stream ended early: consumed {} of {} tables",
            evaluator.tables_consumed(),
            header.num_tables
        ))
        .in_phase(SessionPhase::Stream));
    }

    let tables = evaluator.tables_consumed();
    let finish = evaluator.finish(&output_decode);
    // Cursor past the decode frame: on a resume here the garbler
    // replays nothing and just re-awaits the shared outputs.
    let final_cursor = stats.chunks + 1;
    loop {
        let sent = (|| -> Result<(), RuntimeError> {
            write_message(&mut channel, &Message::Outputs(finish.outputs.clone()))?;
            Ok(channel.flush()?)
        })();
        match sent {
            Ok(()) => break,
            Err(e) => {
                channel = evaluator_recover(
                    channel,
                    e,
                    SessionPhase::Output,
                    ticket,
                    final_cursor,
                    &config.deadlines,
                    &mut carried,
                    &mut resumes,
                    &mut resume,
                )?;
            }
        }
    }

    let mut channel_stats = channel.stats();
    absorb_stats(&mut channel_stats, &carried);
    Ok(SessionReport {
        role: SessionRole::Evaluator,
        outputs: finish.outputs,
        bytes_sent: channel_stats.bytes_sent,
        bytes_received: channel_stats.bytes_received,
        flushes: channel_stats.flushes,
        table_chunks: stats.chunks,
        tables,
        peak_live_wires: finish.peak_live_wires,
        within_window: finish.peak_live_wires <= header.window_wires as usize,
        ot_transfers: circuit.evaluator_inputs() as u64,
        crypto: finish.crypto,
        compute_ns: stats.compute_ns,
        io_ns: stats.io_ns,
        stream_ns: stats.wall_ns,
        overlap_ratio: stats.overlap_ratio(),
        pipeline_depth: stats.depth,
        ot_ns,
        base_ots: ot.base_ots,
        ext_ots: ot.ext_ots,
        ot_io_stall_ns: ot.io_stall_ns,
        compute_stall_ns: stats.compute_stall_ns,
        io_stall_ns: stats.io_stall_ns,
        oor_queue_peak: finish.oor_queue_peak,
        resumes,
        replayed_frames: 0,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use haac_circuit::{from_bits, to_bits, Builder};
    use rand::SeedableRng as _;

    fn adder(width: u32) -> Circuit {
        let mut b = Builder::new();
        let x = b.input_garbler(width);
        let y = b.input_evaluator(width);
        let (s, _) = b.add_words(&x, &y);
        b.finish(s).unwrap()
    }

    #[test]
    fn evaluator_deadline_types_a_silent_garbler() {
        let c = adder(8);
        let deadlines = SessionDeadlines {
            handshake: Some(Duration::from_millis(40)),
            ..SessionDeadlines::none()
        };
        let config = SessionConfig::for_circuit(&c).with_deadlines(deadlines);
        let (mut ours, theirs) = crate::MemChannel::pair();
        // The peer endpoint stays alive but sends nothing: a stall, not
        // a disconnect. Without the deadline this would block forever.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let err = run_evaluator_with(&c, &to_bits(1, 8), &mut rng, &config, &mut ours).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Deadline { phase: SessionPhase::Handshake }),
            "expected a handshake deadline, got {err}"
        );
        assert!(err.retry_safe(), "nothing flowed: a retry is safe");
        drop(theirs);
    }

    #[test]
    fn garbler_deadline_types_a_stalled_evaluator() {
        let c = adder(8);
        let deadlines = SessionDeadlines {
            handshake: Some(Duration::from_millis(200)),
            ot: Some(Duration::from_millis(40)),
            chunk: Some(Duration::from_millis(40)),
        };
        let config = SessionConfig::for_circuit(&c).with_deadlines(deadlines);
        let (mut ours, theirs) = crate::MemChannel::pair();
        // The peer accepts the handshake traffic (buffered in the
        // queue) but never answers the base-OT round trip.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let err = run_garbler(&c, &to_bits(1, 8), &mut rng, &config, &mut ours).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Deadline { phase: SessionPhase::Ot }),
            "expected an OT deadline, got {err}"
        );
        drop(theirs);
    }

    #[test]
    fn undeadlined_configs_compute_identically() {
        // Deadlines generous enough never to trip must not change the
        // transcript or the outputs.
        let c = adder(16);
        let deadlines = SessionDeadlines {
            handshake: Some(Duration::from_secs(30)),
            ot: Some(Duration::from_secs(30)),
            chunk: Some(Duration::from_secs(30)),
        };
        let config = SessionConfig::for_circuit(&c).with_deadlines(deadlines);
        let (g, e) =
            run_local_session(&c, &to_bits(1234, 16), &to_bits(4321, 16), 3, &config).unwrap();
        assert_eq!(from_bits(&g.outputs), 5555);
        assert_eq!(g.outputs, e.outputs);
    }

    #[test]
    fn local_session_computes_the_sum() {
        let c = adder(16);
        let config = SessionConfig::for_circuit(&c);
        let (g, e) =
            run_local_session(&c, &to_bits(1234, 16), &to_bits(4321, 16), 3, &config).unwrap();
        assert_eq!(from_bits(&g.outputs), 5555);
        assert_eq!(g.outputs, e.outputs);
        assert_eq!(g.tables, c.num_and_gates() as u64);
        assert_eq!(g.table_chunks, e.table_chunks);
        assert!(g.table_chunks >= 1);
        assert_eq!(e.ot_transfers, 16);
        assert!(e.within_window, "peak {} window {}", e.peak_live_wires, config.window.sww_wires());
        // Each side's sent bytes are the other side's received bytes.
        assert_eq!(g.bytes_sent, e.bytes_received);
        assert_eq!(e.bytes_sent, g.bytes_received);
    }

    #[test]
    fn session_reports_meter_cipher_work() {
        let c = adder(16);
        let config = SessionConfig::for_circuit(&c);
        let (g, e) =
            run_local_session(&c, &to_bits(100, 16), &to_bits(200, 16), 8, &config).unwrap();
        let ands = c.num_and_gates() as u64;
        // Re-keyed garbling: exactly 2 key expansions + 4 AES blocks per
        // AND gate; evaluation: 2 expansions + 2 blocks.
        assert_eq!(g.crypto.key_expansions, 2 * ands);
        assert_eq!(g.crypto.aes_blocks, 4 * ands);
        assert_eq!(e.crypto.key_expansions, 2 * ands);
        assert_eq!(e.crypto.aes_blocks, 2 * ands);
        assert!(g.and_gates_per_sec() > 0.0);
        // The streaming phase was metered on both sides.
        assert!(g.compute_ns > 0 && e.compute_ns > 0);
    }

    #[test]
    fn attached_telemetry_sees_the_stream_and_respects_the_kill_switch() {
        let c = adder(16);
        let ands = c.num_and_gates() as u64;
        let tel = Arc::new(SessionTelemetry::detached());
        let config = SessionConfig::for_circuit(&c).with_telemetry(Arc::clone(&tel));
        let (g, e) = run_local_session(&c, &to_bits(3, 16), &to_bits(4, 16), 9, &config).unwrap();
        assert_eq!(from_bits(&g.outputs), 7);
        // Both sides share the handles: tables counted once per side.
        assert_eq!(tel.tables.get(), 2 * ands);
        assert_eq!(tel.chunk_compute_ns.count(), g.table_chunks + e.table_chunks);
        assert_eq!(tel.chunk_io_ns.count(), g.table_chunks + e.table_chunks);
        assert_eq!(tel.ot_ns.count(), 2, "one OT phase sample per side");
        assert!(tel.table_rate.per_sec() > 0.0);
        // In-window plan: the OoRW queue never held anything.
        assert_eq!(tel.oor_occupancy.quantile(1.0), 0);
        // The global kill switch turns recording off without touching
        // the wire protocol or the report.
        haac_telemetry::set_enabled(false);
        let before = tel.tables.get();
        let (g2, _) = run_local_session(&c, &to_bits(3, 16), &to_bits(4, 16), 9, &config).unwrap();
        haac_telemetry::set_enabled(true);
        assert_eq!(g2.outputs, g.outputs);
        assert_eq!(tel.tables.get(), before, "disabled telemetry must not record");
    }

    #[test]
    fn pipelined_reports_attribute_stalls() {
        let c = adder(24);
        let config = SessionConfig::for_circuit(&c).with_chunk_tables(2);
        let (g, e) = run_local_session(&c, &to_bits(10, 24), &to_bits(20, 24), 6, &config).unwrap();
        // Pipelined rings: stall attribution is measured, serial-only
        // fields stay coherent with the stage totals.
        assert!(g.pipeline_depth >= 1 && e.pipeline_depth >= 1);
        assert!(g.ot_ns > 0 && e.ot_ns > 0);
        // Serial sessions never attribute stalls.
        let serial = config.clone().with_pipeline(false);
        let (gs, es) =
            run_local_session(&c, &to_bits(10, 24), &to_bits(20, 24), 6, &serial).unwrap();
        assert_eq!((gs.compute_stall_ns, gs.io_stall_ns), (0, 0));
        assert_eq!((es.compute_stall_ns, es.io_stall_ns), (0, 0));
        assert_eq!(gs.oor_queue_peak, 0, "in-window plan never queues OoR reads");
    }

    #[test]
    fn streaming_matches_monolithic_protocol() {
        let c = adder(12);
        for seed in 0..4 {
            let g_bits = to_bits(1000 + seed, 12);
            let e_bits = to_bits(2000 + seed, 12);
            let config = SessionConfig::for_circuit(&c);
            let (g, _) = run_local_session(&c, &g_bits, &e_bits, seed, &config).unwrap();
            let legacy = haac_gc::protocol::run_two_party(&c, &g_bits, &e_bits, seed);
            assert_eq!(g.outputs, legacy.outputs);
            assert_eq!(g.outputs, c.eval(&g_bits, &e_bits).unwrap());
        }
    }

    #[test]
    fn serial_and_pipelined_sessions_put_identical_bytes_on_the_wire() {
        let c = adder(24);
        let base = SessionConfig::for_circuit(&c).with_chunk_tables(3);
        let serial = base.clone().with_pipeline(false);
        let (gs, es) =
            run_local_session(&c, &to_bits(77, 24), &to_bits(88, 24), 5, &serial).unwrap();
        let (gp, ep) = run_local_session(&c, &to_bits(77, 24), &to_bits(88, 24), 5, &base).unwrap();
        assert_eq!(gs.outputs, gp.outputs);
        assert_eq!(gs.bytes_sent, gp.bytes_sent);
        assert_eq!(gs.bytes_received, gp.bytes_received);
        assert_eq!(gs.flushes, gp.flushes);
        assert_eq!(gs.table_chunks, gp.table_chunks);
        assert_eq!(es.bytes_received, ep.bytes_received);
        assert_eq!(es.table_chunks, ep.table_chunks);
        // Serial sessions never report overlap.
        assert_eq!(gs.overlap_ratio, 0.0);
        assert_eq!(es.overlap_ratio, 0.0);
        assert!(gp.overlap_ratio >= 0.0 && gp.overlap_ratio <= 1.0);
    }

    #[test]
    fn chunk_override_controls_the_stream_granularity() {
        let c = adder(16);
        let config = SessionConfig::for_circuit(&c).with_chunk_tables(2);
        assert_eq!(config.chunk_tables(), 2);
        let (g, e) = run_local_session(&c, &to_bits(1, 16), &to_bits(2, 16), 4, &config).unwrap();
        assert_eq!(g.table_chunks, (c.num_and_gates() as u64).div_ceil(2));
        assert_eq!(g.table_chunks, e.table_chunks);
    }

    #[test]
    fn tiny_window_still_completes_with_many_chunks() {
        let c = adder(32);
        let config = SessionConfig::new(HashScheme::Rekeyed, WindowModel::new(2));
        // A 2-wire window derives single-table chunks; pin that so the
        // mid-stream chunk autotune can't merge them — this test asserts
        // exact framing.
        assert_eq!(config.chunk_tables(), 1);
        let config = config.with_chunk_tables(1);
        let (g, e) = run_local_session(&c, &to_bits(7, 32), &to_bits(8, 32), 1, &config).unwrap();
        assert_eq!(from_bits(&g.outputs), 15);
        // chunk_tables = 1: one chunk (and one flush) per AND table.
        assert_eq!(g.table_chunks, c.num_and_gates() as u64);
        assert!(!e.within_window, "a 2-wire window cannot hold an adder's live set");
    }

    #[test]
    fn planless_config_still_streams_on_the_hashmap_store() {
        use haac_gc::stream::Liveness;

        let c = adder(16);
        let peak = Liveness::analyze(&c).peak_live_wires(&c) as u32;
        let window = WindowModel::new(peak.max(2).next_power_of_two());
        let config = SessionConfig::new(HashScheme::Rekeyed, window);
        assert!(config.plan.is_none());
        let (g, e) = run_local_session(&c, &to_bits(9, 16), &to_bits(6, 16), 2, &config).unwrap();
        assert_eq!(from_bits(&g.outputs), 15);
        assert!(e.within_window);
    }

    #[test]
    fn wrong_input_width_is_rejected() {
        let c = adder(8);
        let config = SessionConfig::for_circuit(&c);
        let err = run_local_session(&c, &to_bits(0, 4), &to_bits(0, 8), 1, &config).unwrap_err();
        assert!(err.to_string().contains("garbler input width"));
    }

    #[test]
    fn mismatched_plan_is_rejected_before_any_traffic() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let big = adder(16);
        let small = adder(8);
        let config = SessionConfig::from_plan(
            HashScheme::Rekeyed,
            std::sync::Arc::new(lower_with_reorder(&small, ReorderKind::Baseline)),
        );
        let (mut gc, _ec) = crate::channel::MemChannel::pair();
        let mut rng = StdRng::seed_from_u64(1);
        let err = run_garbler(&big, &to_bits(1, 16), &mut rng, &config, &mut gc).unwrap_err();
        assert!(err.to_string().contains("plan does not match"), "{err}");
    }

    #[test]
    fn mismatched_circuits_fail_loudly() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let big = adder(16);
        let small = adder(8);
        let (mut gc, mut ec) = crate::channel::MemChannel::pair();
        std::thread::scope(|scope| {
            let config = SessionConfig::for_circuit(&big);
            let garbler = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1);
                run_garbler(&big, &to_bits(1, 16), &mut rng, &config, &mut gc)
            });
            let evaluator = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(2);
                run_evaluator(&small, &to_bits(1, 8), &mut rng, &mut ec)
            });
            let eval_err = evaluator.join().unwrap().unwrap_err();
            assert!(eval_err.to_string().contains("circuit mismatch"), "{eval_err}");
            // The garbler sees the evaluator hang up mid-protocol.
            assert!(garbler.join().unwrap().is_err());
        });
    }

    #[test]
    fn slow_evaluator_backpressures_the_garbler_without_unbounded_buffering() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::io;

        /// A channel whose reads lag: every `recv_exact` sleeps first,
        /// modeling an evaluator that falls behind the table stream.
        struct SlowChannel {
            inner: crate::channel::MemChannel,
            delay: std::time::Duration,
        }

        impl Channel for SlowChannel {
            fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
                self.inner.send(bytes)
            }
            fn recv_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
                std::thread::sleep(self.delay);
                self.inner.recv_exact(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                self.inner.flush()
            }
            fn stats(&self) -> crate::ChannelStats {
                self.inner.stats()
            }
        }

        let c = adder(32);
        // A 2-wire window streams one table per chunk (one flush each),
        // and capacity 1 lets at most one unread flush exist per
        // direction: the garbler *must* stall whenever the evaluator
        // lags — by construction it cannot buffer the circuit (the
        // pipelined I/O stage holds at most PIPELINE_DEPTH chunks
        // beyond that). Chunk size pinned: this test asserts exact
        // framing, which opts out of the mid-stream chunk autotune.
        let config =
            SessionConfig::new(HashScheme::Rekeyed, WindowModel::new(2)).with_chunk_tables(1);
        let (mut gc, ec) = crate::channel::MemChannel::pair_bounded(1);
        let mut ec = SlowChannel { inner: ec, delay: std::time::Duration::from_millis(1) };
        std::thread::scope(|scope| {
            let garbler = scope.spawn(|| {
                let mut rng = StdRng::seed_from_u64(21);
                run_garbler(&c, &to_bits(7, 32), &mut rng, &config, &mut gc)
            });
            let evaluator = scope.spawn(|| {
                let mut rng = StdRng::seed_from_u64(22);
                run_evaluator(&c, &to_bits(8, 32), &mut rng, &mut ec)
            });
            let g = garbler.join().unwrap().unwrap();
            let e = evaluator.join().unwrap().unwrap();
            assert_eq!(from_bits(&g.outputs), 15);
            assert_eq!(g.outputs, e.outputs);
            // The stall was real: far more chunks (flushes) than the
            // queue could ever hold at once.
            assert_eq!(g.table_chunks, c.num_and_gates() as u64);
            assert!(g.table_chunks > 8, "want a many-chunk stream, got {}", g.table_chunks);
        });
    }

    #[test]
    fn pipeline_depth_is_reported_pinnable_and_bounded() {
        let c = adder(24);
        // Pinned: both sides run (and report) exactly the pinned ring.
        let pinned = SessionConfig::for_circuit(&c).with_chunk_tables(2).with_pipeline_depth(5);
        let (g, e) = run_local_session(&c, &to_bits(3, 24), &to_bits(4, 24), 6, &pinned).unwrap();
        assert_eq!(g.pipeline_depth, 5);
        assert_eq!(e.pipeline_depth, 5);
        // Serial sessions have no ring.
        let serial = SessionConfig::for_circuit(&c).with_chunk_tables(2).with_pipeline(false);
        let (gs, es) = run_local_session(&c, &to_bits(3, 24), &to_bits(4, 24), 6, &serial).unwrap();
        assert_eq!(gs.pipeline_depth, 0);
        assert_eq!(es.pipeline_depth, 0);
        // Autotuned: starts at the default and may only widen, bounded
        // by the ceiling; the wire bytes are identical regardless.
        let auto = SessionConfig::for_circuit(&c).with_chunk_tables(2);
        let (ga, _) = run_local_session(&c, &to_bits(3, 24), &to_bits(4, 24), 6, &auto).unwrap();
        assert!(
            (PIPELINE_DEPTH..=MAX_PIPELINE_DEPTH).contains(&ga.pipeline_depth),
            "autotuned depth {} outside [{PIPELINE_DEPTH}, {MAX_PIPELINE_DEPTH}]",
            ga.pipeline_depth
        );
        assert_eq!(g.bytes_sent, ga.bytes_sent);
        assert_eq!(g.bytes_sent, gs.bytes_sent);
    }

    #[test]
    fn no_evaluator_inputs_skips_no_messages() {
        // Garbler-only inputs: OT runs with an empty batch.
        let mut b = Builder::new();
        let x = b.input_garbler(8);
        let y = b.not_word(&x);
        let c = b.finish(y).unwrap();
        let config = SessionConfig::for_circuit(&c);
        let (g, e) = run_local_session(&c, &to_bits(0b1010_1010, 8), &[], 9, &config).unwrap();
        assert_eq!(from_bits(&g.outputs), 0b0101_0101);
        assert_eq!(e.ot_transfers, 0);
    }

    #[test]
    fn extended_sessions_compute_identically_and_bound_base_ots() {
        let c = adder(16);
        let base = SessionConfig::for_circuit(&c);
        let ext = base.clone().with_ot_mode(OtMode::Extended);
        let (gb, _) =
            run_local_session(&c, &to_bits(1234, 16), &to_bits(4321, 16), 3, &base).unwrap();
        let (ge, ee) =
            run_local_session(&c, &to_bits(1234, 16), &to_bits(4321, 16), 3, &ext).unwrap();
        assert_eq!(ge.outputs, gb.outputs, "extension must not change the computation");
        assert_eq!(from_bits(&ge.outputs), 5555);
        // The wall the extension tears down: base OTs stop scaling with
        // the input count (κ = 128 bootstrap transfers, whatever m is).
        assert_eq!(ge.base_ots, haac_gc::OT_EXT_KAPPA as u64);
        assert_eq!(ge.ext_ots, 16);
        assert_eq!(ee.base_ots, haac_gc::OT_EXT_KAPPA as u64);
        assert_eq!(ee.ext_ots, 16);
        assert_eq!(ee.ot_transfers, 16, "delivered labels are still one per input");
        assert_eq!(ge.ot_transfers, 16);
        // Base mode reports the legacy shape.
        assert_eq!(gb.base_ots, 16);
        assert_eq!(gb.ext_ots, 0);
        // Both sides drained the full table stream despite the prefill.
        assert_eq!(ge.tables, c.num_and_gates() as u64);
        assert_eq!(ge.tables, ee.tables);
    }

    #[test]
    fn extended_serial_and_pipelined_sessions_put_identical_bytes_on_the_wire() {
        let c = adder(24);
        let ext =
            SessionConfig::for_circuit(&c).with_chunk_tables(3).with_ot_mode(OtMode::Extended);
        let serial = ext.clone().with_pipeline(false);
        let (gs, es) =
            run_local_session(&c, &to_bits(77, 24), &to_bits(88, 24), 5, &serial).unwrap();
        let (gp, ep) = run_local_session(&c, &to_bits(77, 24), &to_bits(88, 24), 5, &ext).unwrap();
        assert_eq!(gs.outputs, gp.outputs);
        assert_eq!(gs.bytes_sent, gp.bytes_sent);
        assert_eq!(gs.bytes_received, gp.bytes_received);
        assert_eq!(gs.table_chunks, gp.table_chunks);
        assert_eq!(es.bytes_received, ep.bytes_received);
        assert_eq!(es.table_chunks, ep.table_chunks);
    }

    #[test]
    fn ot_mode_mismatch_is_refused_before_the_ot_phase() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let c = adder(8);
        let c = &c;
        let (mut gc, mut ec) = crate::channel::MemChannel::pair();
        std::thread::scope(|scope| {
            let ext = SessionConfig::for_circuit(c).with_ot_mode(OtMode::Extended);
            let base = SessionConfig::for_circuit(c);
            let garbler = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1);
                run_garbler(c, &to_bits(1, 8), &mut rng, &ext, &mut gc)
            });
            let evaluator = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(2);
                run_evaluator_with(c, &to_bits(2, 8), &mut rng, &base, &mut ec)
            });
            let eval_err = evaluator.join().unwrap().unwrap_err();
            assert!(eval_err.to_string().contains("OT mode mismatch"), "{eval_err}");
            // The evaluator hung up before answering the extension's
            // opening message; the garbler must surface that, not hang.
            assert!(garbler.join().unwrap().is_err());
        });
    }

    #[test]
    fn telemetry_meters_the_ot_mode_split() {
        let c = adder(16);
        let tel = Arc::new(SessionTelemetry::detached());
        let ext = SessionConfig::for_circuit(&c)
            .with_telemetry(Arc::clone(&tel))
            .with_ot_mode(OtMode::Extended);
        run_local_session(&c, &to_bits(3, 16), &to_bits(4, 16), 9, &ext).unwrap();
        // Both sides record: 2 × κ bootstrap OTs, 2 × 16 extended rows.
        assert_eq!(tel.base_ots.get(), 2 * haac_gc::OT_EXT_KAPPA as u64);
        assert_eq!(tel.ext_ots.get(), 2 * 16);
        assert_eq!(tel.ot_ns.count(), 2, "one OT phase sample per side");
    }

    type DynChannel = Box<dyn Channel + Send>;

    /// Drives one resumable session pair, optionally cutting the
    /// evaluator's first connection at the given channel operation. Both
    /// resume callbacks reconnect through a shared rendezvous: the
    /// evaluator's makes a fresh `MemChannel` pair and hands the garbler
    /// its end; the garbler's consumes the peer's `Resume` frame off the
    /// new channel, exactly as the serving layer's handoff job does when
    /// routing by ticket. `wrap` intercepts every *resumed* channel end
    /// (tests use it to observe deadline re-arming).
    fn run_resumable_pair(
        circuit: &Circuit,
        seed: u64,
        config: &SessionConfig,
        garbler_bits: &[bool],
        evaluator_bits: &[bool],
        cut_at_op: Option<u64>,
        wrap: &(dyn Fn(crate::channel::MemChannel) -> DynChannel + Sync),
    ) -> Result<(SessionReport, SessionReport), RuntimeError> {
        run_resumable_pair_with(
            false,
            circuit,
            seed,
            config,
            garbler_bits,
            evaluator_bits,
            cut_at_op,
            wrap,
        )
    }

    /// Like [`run_resumable_pair`], with a `banked` switch: the garbler
    /// side pre-garbles the plan from the *same* seeded rng and serves
    /// the session from the stored instance — every random draw happens
    /// in the same order as online garbling, so the transcript must be
    /// bit-identical to the `banked = false` run.
    #[allow(clippy::too_many_arguments)]
    fn run_resumable_pair_with(
        banked: bool,
        circuit: &Circuit,
        seed: u64,
        config: &SessionConfig,
        garbler_bits: &[bool],
        evaluator_bits: &[bool],
        cut_at_op: Option<u64>,
        wrap: &(dyn Fn(crate::channel::MemChannel) -> DynChannel + Sync),
    ) -> Result<(SessionReport, SessionReport), RuntimeError> {
        use crate::channel::MemChannel;
        use crate::fault::{FaultChannel, FaultSpec};
        use rand::rngs::StdRng;

        let (g_end, e_end) = MemChannel::pair();
        let garbler_channel: DynChannel = Box::new(g_end);
        let evaluator_channel: DynChannel = match cut_at_op {
            Some(op) => Box::new(FaultChannel::new(e_end, FaultSpec::cut_at_op(op), seed)),
            None => Box::new(e_end),
        };
        let (handoff_tx, handoff_rx) = mpsc::channel::<MemChannel>();
        let ticket = 0xC0FF_EE00_D00D_u128;

        std::thread::scope(|scope| {
            let garbler = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let callback = |_err: &RuntimeError, _produced: u64| {
                    let mut channel = wrap(handoff_rx.recv().ok()?);
                    let Ok(Message::Resume { ticket: got, next_seq }) = read_message(&mut channel)
                    else {
                        return None;
                    };
                    assert_eq!(got, ticket, "resume routed to the wrong session");
                    Some((channel, next_seq))
                };
                if banked {
                    let plan = config.plan.as_ref().expect("banked session needs a cached plan");
                    let pool = haac_gc::EnginePool::new(2);
                    let instance =
                        haac_gc::garble_plan_in(&plan.program, &mut rng, config.scheme, &pool);
                    run_garbler_banked(
                        circuit,
                        garbler_bits,
                        instance,
                        &mut rng,
                        config,
                        garbler_channel,
                        callback,
                    )
                } else {
                    run_garbler_resumable(
                        circuit,
                        garbler_bits,
                        &mut rng,
                        config,
                        garbler_channel,
                        callback,
                    )
                }
            });
            let evaluator = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
                run_evaluator_resumable(
                    circuit,
                    evaluator_bits,
                    &mut rng,
                    config,
                    evaluator_channel,
                    ticket,
                    |_err, _next_seq| {
                        let (g_end, e_end) = MemChannel::pair();
                        handoff_tx.send(g_end).ok()?;
                        Some(wrap(e_end))
                    },
                )
            });
            let g = garbler.join().expect("garbler thread panicked");
            let e = evaluator.join().expect("evaluator thread panicked");
            Ok((g?, e?))
        })
    }

    #[test]
    fn resumable_drivers_match_the_plain_transcript_when_nothing_fails() {
        let c = adder(32);
        let config = SessionConfig::for_circuit(&c).with_chunk_tables(2).with_ack_interval(2);
        let gb = to_bits(123_456, 32);
        let eb = to_bits(654_321, 32);
        let (g, e) = run_resumable_pair(&c, 7, &config, &gb, &eb, None, &|ch| Box::new(ch))
            .expect("fault-free resumable session");
        assert_eq!(from_bits(&g.outputs), 777_777);
        assert_eq!(g.outputs, e.outputs);
        assert_eq!((g.resumes, g.replayed_frames), (0, 0));
        assert_eq!(e.resumes, 0);
        // Same computation as the plain drivers.
        let (pg, _) = run_local_session(&c, &gb, &eb, 7, &config).unwrap();
        assert_eq!(pg.outputs, g.outputs);
        assert_eq!(pg.tables, g.tables);
    }

    /// A bank-served session must be indistinguishable on the wire from
    /// an online-garbled one: same seed → same Δ/labels/tables → same
    /// frames, same flush boundaries, same outputs — with zero online
    /// cipher work.
    #[test]
    fn banked_replay_is_transcript_identical_to_online_resumable() {
        let c = adder(32);
        let config = SessionConfig::for_circuit(&c).with_chunk_tables(2).with_ack_interval(2);
        let gb = to_bits(123_456, 32);
        let eb = to_bits(654_321, 32);
        let (online_g, online_e) =
            run_resumable_pair_with(false, &c, 7, &config, &gb, &eb, None, &|ch| Box::new(ch))
                .expect("online resumable session");
        let (banked_g, banked_e) =
            run_resumable_pair_with(true, &c, 7, &config, &gb, &eb, None, &|ch| Box::new(ch))
                .expect("banked resumable session");
        assert_eq!(banked_g.outputs, online_g.outputs);
        assert_eq!(banked_e.outputs, online_e.outputs);
        assert_eq!(banked_g.tables, online_g.tables);
        assert_eq!(banked_g.table_chunks, online_g.table_chunks);
        assert_eq!(banked_g.bytes_sent, online_g.bytes_sent, "identical framing");
        assert_eq!(banked_g.flushes, online_g.flushes, "identical flush boundaries");
        assert_eq!(banked_e.bytes_received, online_e.bytes_received);
        assert_eq!(banked_g.crypto, CryptoCounters::default(), "zero online cipher work");
        assert_ne!(online_g.crypto, CryptoCounters::default(), "online garbling does compute");
    }

    /// Satellite of the bank work: bank-served sessions must survive the
    /// chaos cut sweep exactly as online ones do — a resume replays the
    /// *stored* frames byte-identically, never re-garbles.
    #[test]
    fn banked_cut_sweep_resumes_to_the_uncut_outputs() {
        let c = adder(32);
        let config = SessionConfig::for_circuit(&c).with_chunk_tables(2).with_ack_interval(2);
        let gb = to_bits(123_456, 32);
        let eb = to_bits(654_321, 32);
        let (baseline, _) =
            run_resumable_pair_with(true, &c, 7, &config, &gb, &eb, None, &|ch| Box::new(ch))
                .unwrap();

        let mut resumed = 0u64;
        for op in 1..48 {
            match run_resumable_pair_with(true, &c, 7, &config, &gb, &eb, Some(op), &|ch| {
                Box::new(ch)
            }) {
                Ok((g, e)) => {
                    assert_eq!(g.outputs, baseline.outputs, "cut at op {op}");
                    assert_eq!(e.outputs, baseline.outputs, "cut at op {op}");
                    if e.resumes > 0 {
                        resumed += 1;
                        assert!(
                            g.replayed_frames > 0,
                            "cut at op {op}: a banked resume must replay stored frames"
                        );
                        assert_eq!(
                            g.crypto,
                            CryptoCounters::default(),
                            "cut at op {op}: a resume must never re-garble"
                        );
                    }
                }
                Err(err) => {
                    assert!(
                        err.retry_safe() || err.resume_safe(),
                        "cut at op {op}: failure is neither resumed nor retry-safe: {err}"
                    );
                }
            }
        }
        assert!(resumed > 0, "the sweep never exercised a banked resume");
    }

    /// A mis-keyed or stale bank entry is refused before any byte hits
    /// the wire.
    #[test]
    fn banked_session_refuses_a_mismatched_instance() {
        use crate::channel::MemChannel;
        use rand::rngs::StdRng;

        let c = adder(32);
        let other = adder(16);
        let config = SessionConfig::for_circuit(&c);
        let other_config = SessionConfig::for_circuit(&other);
        let plan = other_config.plan.as_ref().unwrap();
        let pool = haac_gc::EnginePool::new(1);
        let mut rng = StdRng::seed_from_u64(3);
        let instance = haac_gc::garble_plan_in(&plan.program, &mut rng, config.scheme, &pool);
        let (g_end, _e_end) = MemChannel::pair();
        let err =
            run_garbler_banked(&c, &to_bits(1, 32), instance, &mut rng, &config, g_end, |_, _| {
                None
            })
            .unwrap_err();
        assert!(err.to_string().contains("banked instance shape"), "{err}");
    }

    #[test]
    fn autotune_widens_ring_and_chunk_from_the_same_imbalance() {
        // Compute-bound or balanced: nothing changes.
        assert_eq!(autotune_stream_shape(10, 10, 3, 64, false), (3, 64));
        assert_eq!(autotune_stream_shape(5, 10, 3, 64, false), (3, 64));
        // Transfers dominate 4×: ring grows toward the ratio, chunk
        // grows by the ratio.
        assert_eq!(autotune_stream_shape(40, 10, 3, 64, false), (5, 256));
        // Both levers are capped.
        assert_eq!(
            autotune_stream_shape(1000, 1, 3, 1 << 19, false),
            (MAX_PIPELINE_DEPTH, MAX_CHUNK_TABLES)
        );
        // A pinned chunk size only ever moves the ring.
        assert_eq!(autotune_stream_shape(40, 10, 3, 64, true), (5, 64));
        // Depth never shrinks below what the session started with.
        assert_eq!(autotune_stream_shape(11, 10, 4, 64, false).0, 4);
    }

    #[test]
    fn cut_sweep_resumes_to_the_uncut_outputs_without_regarbling() {
        // Cut the evaluator's connection at every early channel
        // operation. Each cut must end in exactly one of two sanctioned
        // ways: a pre-stream failure the retry layer owns (retry-safe),
        // or a resumed session whose outputs equal the uncut run's —
        // with the replayed bytes coming out of the garbler's buffer
        // (replayed_frames > 0), never from a second garbling.
        let c = adder(32);
        let config = SessionConfig::for_circuit(&c).with_chunk_tables(2).with_ack_interval(2);
        let gb = to_bits(123_456, 32);
        let eb = to_bits(654_321, 32);
        let (baseline, _) =
            run_resumable_pair(&c, 7, &config, &gb, &eb, None, &|ch| Box::new(ch)).unwrap();

        let (mut resumed, mut retry_safe) = (0u64, 0u64);
        for op in 1..60 {
            match run_resumable_pair(&c, 7, &config, &gb, &eb, Some(op), &|ch| Box::new(ch)) {
                Ok((g, e)) => {
                    assert_eq!(g.outputs, baseline.outputs, "cut at op {op}");
                    assert_eq!(e.outputs, baseline.outputs, "cut at op {op}");
                    assert_eq!(e.tables, baseline.tables, "cut at op {op}");
                    if e.resumes > 0 {
                        resumed += 1;
                        assert!(g.resumes > 0, "cut at op {op}: evaluator resumed alone");
                        assert!(
                            g.replayed_frames > 0,
                            "cut at op {op}: a resume must replay buffered bytes"
                        );
                    }
                }
                Err(err) => {
                    // A pre-stream cut is the retry layer's problem. The
                    // two sides may even disagree about the boundary
                    // (the evaluator dies in its OT phase while the
                    // garbler is already streaming): the evaluator gives
                    // up retry-safe, and the garbler's resume-safe error
                    // surfaces once its callback finds no peer. Only an
                    // error that is *neither* would mean the resume
                    // machinery corrupted a session.
                    assert!(
                        err.retry_safe() || err.resume_safe(),
                        "cut at op {op}: failure is neither resumed nor retry-safe: {err}"
                    );
                    retry_safe += 1;
                }
            }
        }
        assert!(resumed > 0, "the sweep never exercised a resume");
        assert!(retry_safe > 0, "the sweep never hit the retry-safe region");
    }

    #[test]
    fn resumed_connections_rearm_the_stream_deadline() {
        use std::io;
        use std::sync::Mutex;

        // Regression: a freshly reconnected channel starts with no I/O
        // deadline armed — the drivers must re-arm the chunk budget on
        // it, making the stream's progress requirement per-connection
        // rather than cumulative across reconnects.
        let c = adder(32);
        let chunk_budget = Duration::from_secs(5);
        let config = SessionConfig::for_circuit(&c)
            .with_chunk_tables(2)
            .with_ack_interval(2)
            .with_deadlines(SessionDeadlines {
                handshake: None,
                ot: None,
                chunk: Some(chunk_budget),
            });

        #[derive(Debug)]
        struct ArmRecorder {
            inner: crate::channel::MemChannel,
            armed: Arc<Mutex<Vec<Option<Duration>>>>,
        }
        impl Channel for ArmRecorder {
            fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
                self.inner.send(bytes)
            }
            fn recv_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
                self.inner.recv_exact(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                self.inner.flush()
            }
            fn stats(&self) -> ChannelStats {
                self.inner.stats()
            }
            fn set_io_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
                self.armed.lock().unwrap().push(timeout);
                self.inner.set_io_deadline(timeout)
            }
        }

        let armed: Arc<Mutex<Vec<Option<Duration>>>> = Arc::new(Mutex::new(Vec::new()));
        let record = armed.clone();
        let wrap = move |ch: crate::channel::MemChannel| -> DynChannel {
            Box::new(ArmRecorder { inner: ch, armed: record.clone() })
        };
        // Scan for a cut that lands mid-stream (early ops hit the
        // retry-safe handshake/OT region, whose exact width is a wire
        // detail this test must not encode).
        let mut resumed = false;
        for op in 10..60 {
            armed.lock().unwrap().clear();
            let Ok((g, e)) = run_resumable_pair(
                &c,
                7,
                &config,
                &to_bits(123_456, 32),
                &to_bits(654_321, 32),
                Some(op),
                &wrap,
            ) else {
                continue;
            };
            if e.resumes == 0 {
                continue;
            }
            resumed = true;
            assert!(g.resumes >= 1);
            let armed = armed.lock().unwrap();
            // Both resumed ends re-armed the chunk budget (the recorder
            // only wraps resumed channels, so every entry is
            // post-resume).
            assert!(
                armed.iter().filter(|t| **t == Some(chunk_budget)).count() >= 2,
                "cut at op {op}: resumed channels were not re-armed: {armed:?}"
            );
            break;
        }
        assert!(resumed, "no cut in the scanned range produced a resume");
    }

    #[test]
    fn resumable_evaluator_refuses_a_garbler_without_acks() {
        use rand::rngs::StdRng;

        // The plain garbler announces ack_interval 0 — no acks, no
        // replay buffer. A resumable evaluator must refuse at the
        // header instead of discovering at the first cut that the peer
        // kept no replay bytes.
        let c = adder(16);
        let config = SessionConfig::for_circuit(&c);
        let (mut g_end, e_end) = crate::channel::MemChannel::pair();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut rng = StdRng::seed_from_u64(1);
                // Fails when the evaluator hangs up; that is the point.
                let _ = run_garbler(&c, &to_bits(1, 16), &mut rng, &config, &mut g_end);
            });
            let mut rng = StdRng::seed_from_u64(2);
            let err = run_evaluator_resumable(
                &c,
                &to_bits(2, 16),
                &mut rng,
                &config,
                e_end,
                9,
                |_, _| None,
            )
            .unwrap_err();
            assert!(
                matches!(&err, RuntimeError::Protocol(m) if m.contains("cannot be resumed")),
                "{err}"
            );
        });
    }

    #[test]
    fn resumable_garbler_streams_to_the_plain_evaluator() {
        use rand::rngs::StdRng;

        // Mixed pairing: the resumable garbler announces an ack cadence
        // and the plain evaluator honors it from the header — the
        // garbler's replay buffer drains through the acks and the wire
        // computation is unchanged.
        let c = adder(32);
        let config = SessionConfig::for_circuit(&c).with_chunk_tables(2).with_ack_interval(2);
        let (g_end, mut e_end) = crate::channel::MemChannel::pair();
        let (g, e) = std::thread::scope(|scope| {
            let garbler = scope.spawn(|| {
                let mut rng = StdRng::seed_from_u64(5);
                run_garbler_resumable(
                    &c,
                    &to_bits(40_000, 32),
                    &mut rng,
                    &config,
                    g_end,
                    |_err, _produced| None::<(crate::channel::MemChannel, u64)>,
                )
            });
            let mut rng = StdRng::seed_from_u64(5 ^ 0x9E37_79B9_7F4A_7C15);
            let e = run_evaluator_with(&c, &to_bits(2_000, 32), &mut rng, &config, &mut e_end);
            (garbler.join().expect("garbler thread panicked"), e)
        });
        let (g, e) = (g.unwrap(), e.unwrap());
        assert_eq!(from_bits(&g.outputs), 42_000);
        assert_eq!(g.outputs, e.outputs);
        assert_eq!(g.resumes, 0);
    }
}
