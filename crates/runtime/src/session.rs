//! End-to-end two-party sessions: handshake, input delivery, base OT,
//! window-chunked table streaming, and output sharing.
//!
//! The garbler garbles *incrementally* and ships tables in chunks sized
//! by the compiler's sliding-wire-window model ([`WindowModel`]): one
//! chunk per half-window slide, the same granularity at which HAAC's SWW
//! advances. The evaluator consumes each chunk as it lands and retires
//! wire labels at their last use, so its live-label storage tracks the
//! window — O(window), not O(circuit) — which each [`SessionReport`]
//! records as `peak_live_wires`.

use std::time::{Duration, Instant};

use haac_circuit::Circuit;
use haac_core::WindowModel;
use haac_gc::stream::Liveness;
use haac_gc::{CryptoCounters, HashScheme, StreamingEvaluator, StreamingGarbler};
use rand::Rng;

use crate::channel::Channel;
use crate::error::RuntimeError;
use crate::wire::{read_message, write_message, write_tables, Message, SessionHeader};

/// Which side of the protocol a report describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionRole {
    /// Alice: garbles and streams tables.
    Garbler,
    /// Bob: receives tables and evaluates.
    Evaluator,
}

/// Everything a party chooses before a session.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// The gate-hash construction (both parties must agree; the header
    /// carries the garbler's choice and the evaluator validates it).
    pub scheme: HashScheme,
    /// The sliding-wire-window geometry streaming is planned around.
    pub window: WindowModel,
}

impl SessionConfig {
    /// A config with an explicit window.
    pub fn new(scheme: HashScheme, window: WindowModel) -> SessionConfig {
        SessionConfig { scheme, window }
    }

    /// Sizes the window to the circuit's own streaming requirement: the
    /// smallest power-of-two window that holds the circuit's peak live
    /// wires (what the compiler's renaming would provision as SWW
    /// capacity for this program).
    pub fn for_circuit(circuit: &Circuit) -> SessionConfig {
        let peak = Liveness::analyze(circuit).peak_live_wires(circuit) as u32;
        SessionConfig {
            scheme: HashScheme::Rekeyed,
            window: WindowModel::new(peak.max(2).next_power_of_two()),
        }
    }

    /// Tables per streamed chunk: the window's slide granularity (half
    /// the window), the rate at which HAAC retires SWW residency — capped
    /// so a chunk frame (32 B/table) always fits the wire format's
    /// per-frame payload limit.
    pub fn chunk_tables(&self) -> usize {
        const MAX_CHUNK_TABLES: usize = 1 << 20; // 32 MiB of tables per frame
        (self.window.half() as usize).clamp(1, MAX_CHUNK_TABLES)
    }
}

/// Outcome and accounting for one party's side of a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionReport {
    /// Which side this report describes.
    pub role: SessionRole,
    /// The circuit outputs (both parties learn them).
    pub outputs: Vec<bool>,
    /// Bytes this party sent.
    pub bytes_sent: u64,
    /// Bytes this party received.
    pub bytes_received: u64,
    /// Transport flushes this party performed.
    pub flushes: u64,
    /// Garbled-table chunks streamed.
    pub table_chunks: u64,
    /// Total AND tables streamed.
    pub tables: u64,
    /// High-water mark of simultaneously stored wire labels on this side.
    pub peak_live_wires: usize,
    /// Whether `peak_live_wires` fit within the announced window.
    pub within_window: bool,
    /// Base OTs performed (one per evaluator input bit).
    pub ot_transfers: u64,
    /// Cipher work this side performed: AES key expansions (2 per AND
    /// when garbling under re-keying) and AES block calls (4 garbling,
    /// 2 evaluating) — the quantities HAAC's gate engines pipeline.
    pub crypto: CryptoCounters,
    /// Wall-clock duration of this party's session.
    pub elapsed: Duration,
}

impl SessionReport {
    /// AND-gate throughput of this side over the whole session
    /// (handshake and OT included), in gates per second.
    pub fn and_gates_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.tables as f64 / secs
        } else {
            0.0
        }
    }
}

fn expect_message<C: Channel + ?Sized>(
    channel: &mut C,
    expected: &'static str,
) -> Result<Message, RuntimeError> {
    let message = read_message(channel)?;
    if message.name() != expected {
        return Err(RuntimeError::protocol(format!(
            "expected {expected}, received {}",
            message.name()
        )));
    }
    Ok(message)
}

/// Runs the garbler (Alice) side of a streaming session.
///
/// Blocks until the evaluator has shared the outputs back.
///
/// # Errors
///
/// Fails on transport errors, protocol violations, or input width
/// mismatch.
pub fn run_garbler<C: Channel + ?Sized, R: Rng + ?Sized>(
    circuit: &Circuit,
    garbler_bits: &[bool],
    rng: &mut R,
    config: &SessionConfig,
    channel: &mut C,
) -> Result<SessionReport, RuntimeError> {
    if garbler_bits.len() != circuit.garbler_inputs() as usize {
        return Err(RuntimeError::protocol(format!(
            "garbler input width {} does not match circuit ({})",
            garbler_bits.len(),
            circuit.garbler_inputs()
        )));
    }
    let start = Instant::now();
    let chunk_tables = config.chunk_tables();

    write_message(
        channel,
        &Message::Header(SessionHeader {
            garbler_inputs: circuit.garbler_inputs(),
            evaluator_inputs: circuit.evaluator_inputs(),
            num_gates: circuit.num_gates() as u64,
            num_tables: circuit.num_and_gates() as u64,
            scheme: config.scheme,
            window_wires: config.window.sww_wires(),
            chunk_tables: chunk_tables as u32,
        }),
    )?;

    let mut garbler = StreamingGarbler::new(circuit, rng, config.scheme);
    write_message(channel, &Message::GarblerInputs(garbler.garbler_input_labels(garbler_bits)))?;

    // Base OT for the evaluator's input labels.
    let ot_transfers = ot_send(circuit, &garbler, rng, channel)?;

    // Stream tables in window-sized chunks, one flush per chunk. One
    // buffer serves the whole stream: `next_tables_into` refills it and
    // `write_tables` frames it from a borrowed slice, so the steady
    // state performs zero per-chunk allocations.
    let mut table_chunks = 0u64;
    let mut tables = 0u64;
    let mut chunk: Vec<[haac_gc::Block; 2]> = Vec::with_capacity(chunk_tables.min(1 << 16));
    while garbler.next_tables_into(chunk_tables, &mut chunk) {
        if chunk.is_empty() {
            continue;
        }
        tables += chunk.len() as u64;
        table_chunks += 1;
        write_tables(channel, &chunk)?;
        channel.flush()?;
    }

    let finish = garbler.finish();
    write_message(channel, &Message::OutputDecode(finish.output_decode))?;
    channel.flush()?;

    let Message::Outputs(outputs) = expect_message(channel, "Outputs")? else { unreachable!() };
    if outputs.len() != circuit.outputs().len() {
        return Err(RuntimeError::protocol(format!(
            "evaluator shared {} outputs, circuit has {}",
            outputs.len(),
            circuit.outputs().len()
        )));
    }

    let stats = channel.stats();
    Ok(SessionReport {
        role: SessionRole::Garbler,
        outputs,
        bytes_sent: stats.bytes_sent,
        bytes_received: stats.bytes_received,
        flushes: stats.flushes,
        table_chunks,
        tables,
        peak_live_wires: finish.peak_live_wires,
        within_window: finish.peak_live_wires <= config.window.sww_wires() as usize,
        ot_transfers,
        crypto: finish.crypto,
        elapsed: start.elapsed(),
    })
}

/// Runs the evaluator (Bob) side of a streaming session.
///
/// The evaluator learns the session parameters from the garbler's header
/// and validates them against its own copy of the circuit.
///
/// # Errors
///
/// Fails on transport errors, protocol violations, or input width
/// mismatch.
pub fn run_evaluator<C: Channel + ?Sized, R: Rng + ?Sized>(
    circuit: &Circuit,
    evaluator_bits: &[bool],
    rng: &mut R,
    channel: &mut C,
) -> Result<SessionReport, RuntimeError> {
    if evaluator_bits.len() != circuit.evaluator_inputs() as usize {
        return Err(RuntimeError::protocol(format!(
            "evaluator input width {} does not match circuit ({})",
            evaluator_bits.len(),
            circuit.evaluator_inputs()
        )));
    }
    let start = Instant::now();

    let Message::Header(header) = expect_message(channel, "Header")? else { unreachable!() };
    validate_header(circuit, &header)?;

    let Message::GarblerInputs(garbler_labels) = expect_message(channel, "GarblerInputs")? else {
        unreachable!()
    };
    if garbler_labels.len() != circuit.garbler_inputs() as usize {
        return Err(RuntimeError::protocol("garbler label count mismatch"));
    }

    let own_labels = ot_receive(evaluator_bits, rng, channel)?;

    let mut input_labels = garbler_labels;
    input_labels.extend(own_labels);
    let mut evaluator = StreamingEvaluator::new(circuit, input_labels, header.scheme);

    let mut table_chunks = 0u64;
    let output_decode = loop {
        match read_message(channel)? {
            Message::Tables(chunk) => {
                table_chunks += 1;
                evaluator.feed(&chunk);
            }
            Message::OutputDecode(decode) => break decode,
            other => {
                return Err(RuntimeError::protocol(format!(
                    "expected Tables or OutputDecode, received {}",
                    other.name()
                )))
            }
        }
    };
    if !evaluator.is_done() {
        return Err(RuntimeError::protocol(format!(
            "table stream ended early: consumed {} of {} tables",
            evaluator.tables_consumed(),
            header.num_tables
        )));
    }

    let tables = evaluator.tables_consumed();
    let finish = evaluator.finish(&output_decode);
    write_message(channel, &Message::Outputs(finish.outputs.clone()))?;
    channel.flush()?;

    let stats = channel.stats();
    Ok(SessionReport {
        role: SessionRole::Evaluator,
        outputs: finish.outputs,
        bytes_sent: stats.bytes_sent,
        bytes_received: stats.bytes_received,
        flushes: stats.flushes,
        table_chunks,
        tables,
        peak_live_wires: finish.peak_live_wires,
        within_window: finish.peak_live_wires <= header.window_wires as usize,
        ot_transfers: circuit.evaluator_inputs() as u64,
        crypto: finish.crypto,
        elapsed: start.elapsed(),
    })
}

fn validate_header(circuit: &Circuit, header: &SessionHeader) -> Result<(), RuntimeError> {
    let mismatch = |what: &str, ours: u64, theirs: u64| {
        Err(RuntimeError::protocol(format!(
            "circuit mismatch: {what} is {theirs} on the garbler, {ours} here"
        )))
    };
    if header.garbler_inputs != circuit.garbler_inputs() {
        return mismatch(
            "garbler_inputs",
            circuit.garbler_inputs() as u64,
            header.garbler_inputs as u64,
        );
    }
    if header.evaluator_inputs != circuit.evaluator_inputs() {
        return mismatch(
            "evaluator_inputs",
            circuit.evaluator_inputs() as u64,
            header.evaluator_inputs as u64,
        );
    }
    if header.num_gates != circuit.num_gates() as u64 {
        return mismatch("num_gates", circuit.num_gates() as u64, header.num_gates);
    }
    if header.num_tables != circuit.num_and_gates() as u64 {
        return mismatch("num_tables", circuit.num_and_gates() as u64, header.num_tables);
    }
    if header.chunk_tables == 0 {
        return Err(RuntimeError::protocol("chunk_tables must be positive"));
    }
    Ok(())
}

#[cfg(feature = "insecure-ot")]
fn ot_send<C: Channel + ?Sized, R: Rng + ?Sized>(
    circuit: &Circuit,
    garbler: &StreamingGarbler<'_>,
    rng: &mut R,
    channel: &mut C,
) -> Result<u64, RuntimeError> {
    use haac_gc::ot::base::OtSender;

    let sender = OtSender::new(rng);
    write_message(channel, &Message::OtSetup(sender.public_point()))?;
    channel.flush()?;

    let Message::OtPoints(points) = expect_message(channel, "OtPoints")? else { unreachable!() };
    if points.len() != circuit.evaluator_inputs() as usize {
        return Err(RuntimeError::protocol("one OT point per evaluator input required"));
    }
    if !points.iter().all(|&r| haac_gc::ot::base::valid_point(r)) {
        // A zero point would collapse both branch keys to a public value,
        // handing the peer both labels (and Δ).
        return Err(RuntimeError::protocol("OT blinded point outside the group"));
    }
    let pairs: Vec<_> = (0..circuit.evaluator_inputs())
        .map(|i| garbler.input_label_pair(circuit.garbler_inputs() + i))
        .collect();
    write_message(channel, &Message::OtCiphertexts(sender.encrypt(&points, &pairs)))?;
    Ok(points.len() as u64)
}

#[cfg(feature = "insecure-ot")]
fn ot_receive<C: Channel + ?Sized, R: Rng + ?Sized>(
    evaluator_bits: &[bool],
    rng: &mut R,
    channel: &mut C,
) -> Result<Vec<haac_gc::Block>, RuntimeError> {
    use haac_gc::ot::base::OtReceiver;

    let Message::OtSetup(point) = expect_message(channel, "OtSetup")? else { unreachable!() };
    if !haac_gc::ot::base::valid_point(point) {
        // A zero setup point would make R_i = 0 exactly when c_i = 1,
        // leaking every choice bit to the sender.
        return Err(RuntimeError::protocol("OT setup point outside the group"));
    }
    let receiver = OtReceiver::new(rng, point, evaluator_bits);
    write_message(channel, &Message::OtPoints(receiver.blinded_points()))?;
    channel.flush()?;

    let Message::OtCiphertexts(pairs) = expect_message(channel, "OtCiphertexts")? else {
        unreachable!()
    };
    if pairs.len() != evaluator_bits.len() {
        return Err(RuntimeError::protocol("one OT ciphertext pair per choice bit required"));
    }
    Ok(receiver.decrypt(&pairs))
}

#[cfg(not(feature = "insecure-ot"))]
fn ot_send<C: Channel + ?Sized, R: Rng + ?Sized>(
    _circuit: &Circuit,
    _garbler: &StreamingGarbler<'_>,
    _rng: &mut R,
    _channel: &mut C,
) -> Result<u64, RuntimeError> {
    Err(RuntimeError::protocol(
        "two-party sessions need a base OT; enable the `insecure-ot` feature",
    ))
}

#[cfg(not(feature = "insecure-ot"))]
fn ot_receive<C: Channel + ?Sized, R: Rng + ?Sized>(
    _evaluator_bits: &[bool],
    _rng: &mut R,
    _channel: &mut C,
) -> Result<Vec<haac_gc::Block>, RuntimeError> {
    Err(RuntimeError::protocol(
        "two-party sessions need a base OT; enable the `insecure-ot` feature",
    ))
}

/// Runs a complete session in-process: garbler and evaluator threads
/// joined by a [`MemChannel`](crate::MemChannel) pair.
///
/// Returns `(garbler_report, evaluator_report)`.
///
/// # Errors
///
/// Propagates whichever party's error surfaced (if both failed, the
/// garbler's).
///
/// # Panics
///
/// Panics if a party thread panics.
///
/// # Examples
///
/// ```
/// use haac_circuit::Builder;
/// use haac_runtime::{run_local_session, SessionConfig};
///
/// let mut b = Builder::new();
/// let alice = b.input_garbler(16);
/// let bob = b.input_evaluator(16);
/// let richer = b.gt_u(&alice, &bob);
/// let c = b.finish(vec![richer]).unwrap();
///
/// let (g, e) = run_local_session(
///     &c,
///     &haac_circuit::to_bits(40_000, 16),
///     &haac_circuit::to_bits(35_000, 16),
///     7,
///     &SessionConfig::for_circuit(&c),
/// )
/// .unwrap();
/// assert_eq!(g.outputs, vec![true]);
/// assert_eq!(e.outputs, vec![true]);
/// ```
pub fn run_local_session(
    circuit: &Circuit,
    garbler_bits: &[bool],
    evaluator_bits: &[bool],
    seed: u64,
    config: &SessionConfig,
) -> Result<(SessionReport, SessionReport), RuntimeError> {
    let (garbler_channel, evaluator_channel) = crate::channel::MemChannel::pair();
    run_session_pair(
        circuit,
        garbler_bits,
        evaluator_bits,
        seed,
        config,
        garbler_channel,
        evaluator_channel,
    )
}

/// Runs a complete session over a real loopback TCP socket: an
/// evaluator thread listens on an ephemeral `127.0.0.1` port, the
/// garbler connects, and both run the full streamed protocol.
///
/// Returns `(garbler_report, evaluator_report)`.
///
/// # Errors
///
/// Propagates socket and session failures.
///
/// # Panics
///
/// Panics if a party thread panics.
pub fn run_tcp_session(
    circuit: &Circuit,
    garbler_bits: &[bool],
    evaluator_bits: &[bool],
    seed: u64,
    config: &SessionConfig,
) -> Result<(SessionReport, SessionReport), RuntimeError> {
    use crate::channel::TcpChannel;
    use std::net::{TcpListener, TcpStream};

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    std::thread::scope(|scope| {
        let accept = scope.spawn(move || -> Result<TcpChannel, RuntimeError> {
            let (stream, _) = listener.accept()?;
            Ok(TcpChannel::from_stream(stream)?)
        });
        let garbler_channel = TcpChannel::from_stream(TcpStream::connect(addr)?)?;
        let evaluator_channel = accept.join().expect("accept thread panicked")?;
        run_session_pair(
            circuit,
            garbler_bits,
            evaluator_bits,
            seed,
            config,
            garbler_channel,
            evaluator_channel,
        )
    })
}

/// Drives both roles on scoped threads over an already-paired transport.
fn run_session_pair<C: Channel + Send>(
    circuit: &Circuit,
    garbler_bits: &[bool],
    evaluator_bits: &[bool],
    seed: u64,
    config: &SessionConfig,
    mut garbler_channel: C,
    mut evaluator_channel: C,
) -> Result<(SessionReport, SessionReport), RuntimeError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    std::thread::scope(|scope| {
        let garbler = scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            run_garbler(circuit, garbler_bits, &mut rng, config, &mut garbler_channel)
        });
        let evaluator = scope.spawn(move || {
            // Independent randomness for the receiver's OT blinding.
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
            run_evaluator(circuit, evaluator_bits, &mut rng, &mut evaluator_channel)
        });
        let garbler_report = garbler.join().expect("garbler thread panicked");
        let evaluator_report = evaluator.join().expect("evaluator thread panicked");
        Ok((garbler_report?, evaluator_report?))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use haac_circuit::{from_bits, to_bits, Builder};

    fn adder(width: u32) -> Circuit {
        let mut b = Builder::new();
        let x = b.input_garbler(width);
        let y = b.input_evaluator(width);
        let (s, _) = b.add_words(&x, &y);
        b.finish(s).unwrap()
    }

    #[test]
    fn local_session_computes_the_sum() {
        let c = adder(16);
        let config = SessionConfig::for_circuit(&c);
        let (g, e) =
            run_local_session(&c, &to_bits(1234, 16), &to_bits(4321, 16), 3, &config).unwrap();
        assert_eq!(from_bits(&g.outputs), 5555);
        assert_eq!(g.outputs, e.outputs);
        assert_eq!(g.tables, c.num_and_gates() as u64);
        assert_eq!(g.table_chunks, e.table_chunks);
        assert!(g.table_chunks >= 1);
        assert_eq!(e.ot_transfers, 16);
        assert!(e.within_window, "peak {} window {}", e.peak_live_wires, config.window.sww_wires());
        // Each side's sent bytes are the other side's received bytes.
        assert_eq!(g.bytes_sent, e.bytes_received);
        assert_eq!(e.bytes_sent, g.bytes_received);
    }

    #[test]
    fn session_reports_meter_cipher_work() {
        let c = adder(16);
        let config = SessionConfig::for_circuit(&c);
        let (g, e) =
            run_local_session(&c, &to_bits(100, 16), &to_bits(200, 16), 8, &config).unwrap();
        let ands = c.num_and_gates() as u64;
        // Re-keyed garbling: exactly 2 key expansions + 4 AES blocks per
        // AND gate; evaluation: 2 expansions + 2 blocks.
        assert_eq!(g.crypto.key_expansions, 2 * ands);
        assert_eq!(g.crypto.aes_blocks, 4 * ands);
        assert_eq!(e.crypto.key_expansions, 2 * ands);
        assert_eq!(e.crypto.aes_blocks, 2 * ands);
        assert!(g.and_gates_per_sec() > 0.0);
    }

    #[test]
    fn streaming_matches_monolithic_protocol() {
        let c = adder(12);
        for seed in 0..4 {
            let g_bits = to_bits(1000 + seed, 12);
            let e_bits = to_bits(2000 + seed, 12);
            let config = SessionConfig::for_circuit(&c);
            let (g, _) = run_local_session(&c, &g_bits, &e_bits, seed, &config).unwrap();
            let legacy = haac_gc::protocol::run_two_party(&c, &g_bits, &e_bits, seed);
            assert_eq!(g.outputs, legacy.outputs);
            assert_eq!(g.outputs, c.eval(&g_bits, &e_bits).unwrap());
        }
    }

    #[test]
    fn tiny_window_still_completes_with_many_chunks() {
        let c = adder(32);
        let config = SessionConfig::new(HashScheme::Rekeyed, WindowModel::new(2));
        let (g, e) = run_local_session(&c, &to_bits(7, 32), &to_bits(8, 32), 1, &config).unwrap();
        assert_eq!(from_bits(&g.outputs), 15);
        // chunk_tables = 1: one chunk (and one flush) per AND table.
        assert_eq!(g.table_chunks, c.num_and_gates() as u64);
        assert!(!e.within_window, "a 2-wire window cannot hold an adder's live set");
    }

    #[test]
    fn wrong_input_width_is_rejected() {
        let c = adder(8);
        let config = SessionConfig::for_circuit(&c);
        let err = run_local_session(&c, &to_bits(0, 4), &to_bits(0, 8), 1, &config).unwrap_err();
        assert!(err.to_string().contains("garbler input width"));
    }

    #[test]
    fn mismatched_circuits_fail_loudly() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let big = adder(16);
        let small = adder(8);
        let (mut gc, mut ec) = crate::channel::MemChannel::pair();
        std::thread::scope(|scope| {
            let config = SessionConfig::for_circuit(&big);
            let garbler = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1);
                run_garbler(&big, &to_bits(1, 16), &mut rng, &config, &mut gc)
            });
            let evaluator = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(2);
                run_evaluator(&small, &to_bits(1, 8), &mut rng, &mut ec)
            });
            let eval_err = evaluator.join().unwrap().unwrap_err();
            assert!(eval_err.to_string().contains("circuit mismatch"), "{eval_err}");
            // The garbler sees the evaluator hang up mid-protocol.
            assert!(garbler.join().unwrap().is_err());
        });
    }

    #[test]
    fn slow_evaluator_backpressures_the_garbler_without_unbounded_buffering() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::io;

        /// A channel whose reads lag: every `recv_exact` sleeps first,
        /// modeling an evaluator that falls behind the table stream.
        struct SlowChannel {
            inner: crate::channel::MemChannel,
            delay: std::time::Duration,
        }

        impl Channel for SlowChannel {
            fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
                self.inner.send(bytes)
            }
            fn recv_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
                std::thread::sleep(self.delay);
                self.inner.recv_exact(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                self.inner.flush()
            }
            fn stats(&self) -> crate::ChannelStats {
                self.inner.stats()
            }
        }

        let c = adder(32);
        // A 2-wire window streams one table per chunk (one flush each),
        // and capacity 1 lets at most one unread flush exist per
        // direction: the garbler *must* stall whenever the evaluator
        // lags — by construction it cannot buffer the circuit.
        let config = SessionConfig::new(HashScheme::Rekeyed, WindowModel::new(2));
        let (mut gc, ec) = crate::channel::MemChannel::pair_bounded(1);
        let mut ec = SlowChannel { inner: ec, delay: std::time::Duration::from_millis(1) };
        std::thread::scope(|scope| {
            let garbler = scope.spawn(|| {
                let mut rng = StdRng::seed_from_u64(21);
                run_garbler(&c, &to_bits(7, 32), &mut rng, &config, &mut gc)
            });
            let evaluator = scope.spawn(|| {
                let mut rng = StdRng::seed_from_u64(22);
                run_evaluator(&c, &to_bits(8, 32), &mut rng, &mut ec)
            });
            let g = garbler.join().unwrap().unwrap();
            let e = evaluator.join().unwrap().unwrap();
            assert_eq!(from_bits(&g.outputs), 15);
            assert_eq!(g.outputs, e.outputs);
            // The stall was real: far more chunks (flushes) than the
            // queue could ever hold at once.
            assert_eq!(g.table_chunks, c.num_and_gates() as u64);
            assert!(g.table_chunks > 8, "want a many-chunk stream, got {}", g.table_chunks);
        });
    }

    #[test]
    fn no_evaluator_inputs_skips_no_messages() {
        // Garbler-only inputs: OT runs with an empty batch.
        let mut b = Builder::new();
        let x = b.input_garbler(8);
        let y = b.not_word(&x);
        let c = b.finish(y).unwrap();
        let config = SessionConfig::for_circuit(&c);
        let (g, e) = run_local_session(&c, &to_bits(0b1010_1010, 8), &[], 9, &config).unwrap();
        assert_eq!(from_bits(&g.outputs), 0b0101_0101);
        assert_eq!(e.ot_transfers, 0);
    }
}
