//! Runtime error type.

use std::fmt;
use std::io;

/// Anything that can go wrong driving a two-party session.
#[derive(Debug)]
pub enum RuntimeError {
    /// The transport failed (peer disconnected, socket error, ...).
    Io(io::Error),
    /// The peer violated the protocol (bad frame, wrong message order,
    /// mismatched circuit parameters).
    Protocol(String),
}

impl RuntimeError {
    /// Builds a protocol-violation error.
    pub fn protocol(message: impl Into<String>) -> RuntimeError {
        RuntimeError::Protocol(message.into())
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Io(e) => write!(f, "channel i/o error: {e}"),
            RuntimeError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Io(e) => Some(e),
            RuntimeError::Protocol(_) => None,
        }
    }
}

impl From<io::Error> for RuntimeError {
    fn from(e: io::Error) -> RuntimeError {
        RuntimeError::Io(e)
    }
}
