//! Runtime error type.
//!
//! Robustness work leans on two refinements over a bare I/O error:
//! **phases** and **typed refusals**. Every failure a session driver
//! surfaces is attributed to the protocol phase it happened in
//! ([`SessionPhase`]), because the phase decides whether a client may
//! safely retry: anything up to and including base OT can be re-run
//! from scratch on a fresh connection, but once garbled tables have
//! started flowing the wire labels are one-time-use and a retry would
//! hand the evaluator a second transcript under the same garbling —
//! so mid-stream failures are terminal. A peer that stops making
//! progress inside a phase's deadline becomes a typed
//! [`Deadline`](RuntimeError::Deadline) instead of a hung thread, and
//! an overloaded server answers with a typed
//! [`Busy`](RuntimeError::Busy) carrying the backoff hint it wants
//! clients to honor.

use std::fmt;
use std::io;

/// The protocol phase a session failure is attributed to.
///
/// Ordering is protocol order; everything strictly before
/// [`Stream`](SessionPhase::Stream) happens before any garbled table is
/// on the wire and is therefore safe to retry on a fresh connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SessionPhase {
    /// Establishing the transport (dial/accept).
    Connect,
    /// Service request/ack plus the session header and input labels.
    Handshake,
    /// The base-OT exchange for the evaluator's input labels.
    Ot,
    /// The garbled-table stream.
    Stream,
    /// The output-decode / shared-outputs tail.
    Output,
}

impl SessionPhase {
    /// Stable lowercase label (metrics, log lines, error text).
    pub fn label(self) -> &'static str {
        match self {
            SessionPhase::Connect => "connect",
            SessionPhase::Handshake => "handshake",
            SessionPhase::Ot => "ot",
            SessionPhase::Stream => "stream",
            SessionPhase::Output => "output",
        }
    }

    /// Whether a failure in this phase happened before any garbled
    /// table flowed — the retry-safety boundary: wire labels are
    /// one-time-use, so once the stream has started a session must
    /// never be re-driven under the same garbling.
    pub fn retry_safe(self) -> bool {
        self < SessionPhase::Stream
    }
}

impl fmt::Display for SessionPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Anything that can go wrong driving a two-party session.
#[derive(Debug)]
pub enum RuntimeError {
    /// The transport failed (peer disconnected, socket error, ...).
    Io(io::Error),
    /// The peer violated the protocol (bad frame, wrong message order,
    /// mismatched circuit parameters).
    Protocol(String),
    /// The peer stopped making progress inside the named phase's
    /// deadline. The session was torn down cleanly instead of hanging.
    Deadline {
        /// The phase whose deadline expired.
        phase: SessionPhase,
    },
    /// The server refused the session before any work was done because
    /// it is at capacity (or draining); retry after the given backoff.
    Busy {
        /// The server's backoff hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// A failure attributed to the phase it happened in (what retry
    /// policies branch on; the source carries the detail).
    Phased {
        /// The phase the failure happened in.
        phase: SessionPhase,
        /// The underlying failure.
        source: Box<RuntimeError>,
    },
}

impl RuntimeError {
    /// Builds a protocol-violation error.
    pub fn protocol(message: impl Into<String>) -> RuntimeError {
        RuntimeError::Protocol(message.into())
    }

    /// Builds a typed server-busy refusal with a backoff hint.
    pub fn busy(retry_after_ms: u64) -> RuntimeError {
        RuntimeError::Busy { retry_after_ms }
    }

    /// Attributes this error to a protocol phase. A timed-out I/O
    /// operation (the kinds socket read/write timeouts produce) becomes
    /// the typed [`Deadline`](RuntimeError::Deadline) for that phase;
    /// anything else keeps its detail wrapped under the phase. Errors
    /// already carrying a phase (or a typed refusal) pass through
    /// unchanged, so the outermost attribution wins only when the inner
    /// layer declined to assign one.
    pub fn in_phase(self, phase: SessionPhase) -> RuntimeError {
        match self {
            RuntimeError::Io(e)
                if matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock) =>
            {
                RuntimeError::Deadline { phase }
            }
            e @ (RuntimeError::Deadline { .. }
            | RuntimeError::Busy { .. }
            | RuntimeError::Phased { .. }) => e,
            other => RuntimeError::Phased { phase, source: Box::new(other) },
        }
    }

    /// The phase this error is attributed to, if any.
    pub fn phase(&self) -> Option<SessionPhase> {
        match self {
            RuntimeError::Deadline { phase } | RuntimeError::Phased { phase, .. } => Some(*phase),
            _ => None,
        }
    }

    /// Whether a client may retry the whole session on a fresh
    /// connection after this failure. True for typed busy refusals and
    /// for failures attributed to a phase before the table stream;
    /// everything else — including unattributed failures — is treated
    /// as mid-garbling and must not be retried (labels are
    /// one-time-use).
    pub fn retry_safe(&self) -> bool {
        match self {
            RuntimeError::Busy { .. } => true,
            _ => self.phase().is_some_and(SessionPhase::retry_safe),
        }
    }

    /// Whether this failure may be survived by **resuming** the same
    /// session instance over a fresh connection (byte replay from the
    /// last acknowledged stream cursor — never a retry, which would
    /// re-garble). True only for transport-shaped failures (I/O errors
    /// and deadlines) attributed to the `Stream` or `Output` phase: a
    /// dead wire is recoverable, a protocol violation mid-stream means
    /// the peer is broken and the session is fatal.
    pub fn resume_safe(&self) -> bool {
        match self {
            RuntimeError::Deadline { phase } => !phase.retry_safe(),
            RuntimeError::Phased { phase, source } => {
                !phase.retry_safe() && matches!(**source, RuntimeError::Io(_))
            }
            _ => false,
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Io(e) => write!(f, "channel i/o error: {e}"),
            RuntimeError::Protocol(m) => write!(f, "protocol violation: {m}"),
            RuntimeError::Deadline { phase } => {
                write!(f, "deadline exceeded: peer made no progress in the {phase} phase")
            }
            RuntimeError::Busy { retry_after_ms } => {
                write!(f, "server busy: retry after {retry_after_ms}ms")
            }
            RuntimeError::Phased { phase, source } => write!(f, "{source} (in the {phase} phase)"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Io(e) => Some(e),
            RuntimeError::Phased { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for RuntimeError {
    fn from(e: io::Error) -> RuntimeError {
        RuntimeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeouts_become_typed_deadlines_in_their_phase() {
        let e = RuntimeError::Io(io::Error::new(io::ErrorKind::TimedOut, "slow"));
        match e.in_phase(SessionPhase::Ot) {
            RuntimeError::Deadline { phase } => assert_eq!(phase, SessionPhase::Ot),
            other => panic!("expected a deadline, got {other}"),
        }
        let e = RuntimeError::Io(io::Error::new(io::ErrorKind::WouldBlock, "slow"));
        assert!(matches!(e.in_phase(SessionPhase::Stream), RuntimeError::Deadline { .. }));
    }

    #[test]
    fn inner_phase_attribution_wins() {
        let inner = RuntimeError::protocol("boom").in_phase(SessionPhase::Handshake);
        let outer = inner.in_phase(SessionPhase::Stream);
        assert_eq!(outer.phase(), Some(SessionPhase::Handshake));
        assert!(outer.to_string().contains("boom"), "{outer}");
        assert!(outer.to_string().contains("handshake"), "{outer}");
    }

    #[test]
    fn retry_safety_follows_the_table_stream_boundary() {
        assert!(RuntimeError::busy(250).retry_safe());
        assert!(RuntimeError::protocol("x").in_phase(SessionPhase::Connect).retry_safe());
        assert!(RuntimeError::protocol("x").in_phase(SessionPhase::Handshake).retry_safe());
        assert!(RuntimeError::protocol("x").in_phase(SessionPhase::Ot).retry_safe());
        assert!(!RuntimeError::protocol("x").in_phase(SessionPhase::Stream).retry_safe());
        assert!(!RuntimeError::protocol("x").in_phase(SessionPhase::Output).retry_safe());
        // Unattributed failures default to not-retryable: without a
        // phase there is no proof the table stream never started.
        assert!(!RuntimeError::protocol("x").retry_safe());
        assert!(!RuntimeError::Io(io::Error::other("x")).retry_safe());
    }

    #[test]
    fn resume_safety_covers_transport_failures_past_the_stream_boundary() {
        // Dead wire mid-stream / mid-output: resumable, not retryable.
        let cut = RuntimeError::Io(io::Error::other("reset")).in_phase(SessionPhase::Stream);
        assert!(cut.resume_safe() && !cut.retry_safe());
        let cut = RuntimeError::Io(io::Error::other("reset")).in_phase(SessionPhase::Output);
        assert!(cut.resume_safe());
        assert!(RuntimeError::Deadline { phase: SessionPhase::Stream }.resume_safe());
        // Pre-stream failures are retryable, never resumable.
        assert!(!RuntimeError::Io(io::Error::other("x")).in_phase(SessionPhase::Ot).resume_safe());
        assert!(!RuntimeError::busy(250).resume_safe());
        // A protocol violation mid-stream is fatal either way.
        assert!(!RuntimeError::protocol("x").in_phase(SessionPhase::Stream).resume_safe());
        assert!(!RuntimeError::protocol("x").resume_safe());
    }
}
