//! Pluggable byte transports between the two parties.
//!
//! A [`Channel`] is a reliable, ordered, *buffered* byte pipe with
//! explicit flush points and traffic accounting. The session layer
//! writes whole protocol frames and flushes at streaming boundaries
//! (end of handshake, end of each table chunk), so a channel
//! implementation sees exactly the message pattern a real deployment
//! would put on the wire.
//!
//! Two implementations ship here:
//!
//! - [`MemChannel`]: paired in-process queues, for tests and
//!   single-machine two-thread sessions (the moral equivalent of a
//!   loopback socket without the kernel).
//! - [`TcpChannel`]: a real TCP stream with `TCP_NODELAY`, for genuine
//!   two-process / two-machine sessions.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Initial write-buffer capacity for both channel kinds: a full
/// default-window table chunk (2048 tables × 32 B) plus framing, so
/// steady-state streaming never grows the buffer.
const WRITE_BUFFER_CAPACITY: usize = 64 * 1024 + 256;

/// Cumulative traffic counters for one endpoint of a channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Bytes handed to `send` so far.
    pub bytes_sent: u64,
    /// Bytes returned from `recv_exact` so far.
    pub bytes_received: u64,
    /// Number of `flush` calls that transmitted buffered data.
    pub flushes: u64,
}

/// A reliable, ordered byte pipe between the garbler and the evaluator.
///
/// `send` may buffer; `flush` must make everything sent so far visible
/// to the peer. `recv_exact` blocks until the buffer is filled or the
/// peer disconnects (an error).
pub trait Channel {
    /// Queues `bytes` for transmission.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the peer has disconnected.
    fn send(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Fills `buf` completely from the peer, blocking as needed.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the peer disconnects first.
    fn recv_exact(&mut self, buf: &mut [u8]) -> io::Result<()>;

    /// Transmits everything buffered by `send`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the peer has disconnected.
    fn flush(&mut self) -> io::Result<()>;

    /// Traffic counters for this endpoint.
    fn stats(&self) -> ChannelStats;

    /// Bounds every subsequent blocking operation (`recv_exact`,
    /// `flush`) to `timeout`; `None` restores unbounded blocking. An
    /// operation that cannot complete in time fails with
    /// [`io::ErrorKind::TimedOut`] (or `WouldBlock` on transports whose
    /// socket timeouts surface that way) — the session layer converts
    /// either into a typed per-phase deadline error. The default
    /// implementation ignores the deadline (a transport that cannot
    /// time out simply keeps blocking; sessions over it fall back to
    /// the pre-deadline behavior).
    ///
    /// # Errors
    ///
    /// Propagates transport errors from arming the timeout.
    fn set_io_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let _ = timeout;
        Ok(())
    }
}

impl<T: Channel + ?Sized> Channel for Box<T> {
    fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
        (**self).send(bytes)
    }

    fn recv_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        (**self).recv_exact(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }

    fn stats(&self) -> ChannelStats {
        (**self).stats()
    }

    fn set_io_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        (**self).set_io_deadline(timeout)
    }
}

/// Default [`MemChannel::pair`] capacity, in flushed-but-unread
/// messages. Each flush carries at most one table chunk (~64 KiB), so
/// this bounds a lagging peer's backlog to a few MiB instead of letting
/// a fast garbler buffer an entire circuit in memory.
pub const DEFAULT_MEM_CHANNEL_CAPACITY: usize = 64;

/// In-process channel endpoint: paired FIFO byte queues with *bounded*
/// capacity.
///
/// The bound is the backpressure a real socket provides for free: when
/// the peer stops reading, [`flush`](Channel::flush) blocks once
/// `capacity` flushed messages are outstanding, stalling the sender
/// instead of growing its memory without limit. Tests exercise
/// garbler-side backpressure deterministically via
/// [`pair_bounded`](MemChannel::pair_bounded) with a tiny capacity.
///
/// # Examples
///
/// ```
/// use haac_runtime::{Channel, MemChannel};
///
/// let (mut alice, mut bob) = MemChannel::pair();
/// alice.send(b"hello").unwrap();
/// alice.flush().unwrap();
/// let mut buf = [0u8; 5];
/// bob.recv_exact(&mut buf).unwrap();
/// assert_eq!(&buf, b"hello");
/// assert_eq!(alice.stats().bytes_sent, 5);
/// assert_eq!(bob.stats().bytes_received, 5);
/// ```
#[derive(Debug)]
pub struct MemChannel {
    outbox: mpsc::SyncSender<Vec<u8>>,
    inbox: mpsc::Receiver<Vec<u8>>,
    write_buffer: Vec<u8>,
    read_buffer: VecDeque<u8>,
    stats: ChannelStats,
    /// Per-operation bound on blocking receives and backpressured
    /// flushes (the in-process analogue of socket timeouts).
    io_timeout: Option<Duration>,
}

impl MemChannel {
    /// Creates two connected endpoints with the default capacity.
    pub fn pair() -> (MemChannel, MemChannel) {
        MemChannel::pair_bounded(DEFAULT_MEM_CHANNEL_CAPACITY)
    }

    /// Creates two connected endpoints whose queues hold at most
    /// `capacity` flushed-but-unread messages in each direction; a
    /// further flush blocks until the peer catches up.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a rendezvous queue would deadlock
    /// two parties that both need to send before reading).
    pub fn pair_bounded(capacity: usize) -> (MemChannel, MemChannel) {
        assert!(capacity > 0, "capacity must be positive");
        let (to_b, from_a) = mpsc::sync_channel(capacity);
        let (to_a, from_b) = mpsc::sync_channel(capacity);
        let make = |outbox, inbox| MemChannel {
            outbox,
            inbox,
            write_buffer: Vec::with_capacity(WRITE_BUFFER_CAPACITY),
            read_buffer: VecDeque::new(),
            stats: ChannelStats::default(),
            io_timeout: None,
        };
        (make(to_b, from_b), make(to_a, from_a))
    }
}

impl Channel for MemChannel {
    fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.write_buffer.extend_from_slice(bytes);
        self.stats.bytes_sent += bytes.len() as u64;
        Ok(())
    }

    fn recv_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        // Like a socket read timeout, the bound is per operation: one
        // recv_exact gets the whole budget, re-armed on the next call.
        let deadline = self.io_timeout.map(|t| Instant::now() + t);
        while self.read_buffer.len() < buf.len() {
            let message = match deadline {
                None => self.inbox.recv().map_err(|_| disconnected_mid_message())?,
                Some(deadline) => {
                    let remaining = deadline
                        .checked_duration_since(Instant::now())
                        .ok_or_else(recv_timed_out)?;
                    self.inbox.recv_timeout(remaining).map_err(|e| match e {
                        mpsc::RecvTimeoutError::Timeout => recv_timed_out(),
                        mpsc::RecvTimeoutError::Disconnected => disconnected_mid_message(),
                    })?
                }
            };
            self.read_buffer.extend(message);
        }
        for slot in buf.iter_mut() {
            *slot = self.read_buffer.pop_front().expect("length checked above");
        }
        self.stats.bytes_received += buf.len() as u64;
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.write_buffer.is_empty() {
            return Ok(());
        }
        // The queue message must own its bytes; hand over the buffer
        // itself (no memcpy) and replace it with a fresh presized one.
        let mut message =
            std::mem::replace(&mut self.write_buffer, Vec::with_capacity(WRITE_BUFFER_CAPACITY));
        match self.io_timeout {
            None => self
                .outbox
                .send(message)
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer disconnected"))?,
            Some(timeout) => {
                // SyncSender has no send_timeout; poll try_send against
                // the deadline so a peer that stopped reading bounds
                // the backpressure stall instead of wedging the sender.
                let deadline = Instant::now() + timeout;
                loop {
                    match self.outbox.try_send(message) {
                        Ok(()) => break,
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            return Err(io::Error::new(
                                io::ErrorKind::BrokenPipe,
                                "peer disconnected",
                            ));
                        }
                        Err(mpsc::TrySendError::Full(returned)) => {
                            if Instant::now() >= deadline {
                                return Err(io::Error::new(
                                    io::ErrorKind::TimedOut,
                                    "peer stopped draining the channel",
                                ));
                            }
                            message = returned;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
            }
        }
        self.stats.flushes += 1;
        Ok(())
    }

    fn stats(&self) -> ChannelStats {
        self.stats
    }

    fn set_io_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.io_timeout = timeout;
        Ok(())
    }
}

fn disconnected_mid_message() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "peer disconnected mid-message")
}

fn recv_timed_out() -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, "peer sent nothing within the deadline")
}

/// A real TCP transport with write buffering and `TCP_NODELAY`.
///
/// Flush boundaries map one-to-one onto `write_all` calls on the socket,
/// so the runtime's chunked streaming shows up as genuine network
/// behavior (one segment burst per table chunk) instead of one giant
/// blocking write.
#[derive(Debug)]
pub struct TcpChannel {
    stream: TcpStream,
    write_buffer: Vec<u8>,
    stats: ChannelStats,
}

impl TcpChannel {
    /// Connects to a listening peer.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpChannel> {
        TcpChannel::from_stream(TcpStream::connect(addr)?)
    }

    /// Wraps an accepted stream (the listening side).
    ///
    /// # Errors
    ///
    /// Fails if `TCP_NODELAY` cannot be set.
    pub fn from_stream(stream: TcpStream) -> io::Result<TcpChannel> {
        stream.set_nodelay(true)?;
        Ok(TcpChannel {
            stream,
            write_buffer: Vec::with_capacity(WRITE_BUFFER_CAPACITY),
            stats: ChannelStats::default(),
        })
    }

    /// The peer's socket address, if known.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn peer_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.stream.peer_addr()
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.write_buffer.extend_from_slice(bytes);
        self.stats.bytes_sent += bytes.len() as u64;
        Ok(())
    }

    fn recv_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.stream.read_exact(buf)?;
        self.stats.bytes_received += buf.len() as u64;
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.write_buffer.is_empty() {
            return Ok(());
        }
        self.stream.write_all(&self.write_buffer)?;
        self.stream.flush()?;
        self.write_buffer.clear();
        self.stats.flushes += 1;
        Ok(())
    }

    fn stats(&self) -> ChannelStats {
        self.stats
    }

    fn set_io_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        // Genuine socket timeouts: a stalled peer surfaces as
        // `WouldBlock`/`TimedOut` from the kernel, which the session
        // layer types as a per-phase deadline. Timeouts are per socket
        // operation, the same granularity MemChannel emulates.
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn mem_channel_is_full_duplex() {
        let (mut a, mut b) = MemChannel::pair();
        a.send(b"ping").unwrap();
        a.flush().unwrap();
        b.send(b"pong").unwrap();
        b.flush().unwrap();
        let mut buf = [0u8; 4];
        b.recv_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        a.recv_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn mem_channel_reassembles_across_flushes() {
        let (mut a, mut b) = MemChannel::pair();
        a.send(b"ab").unwrap();
        a.flush().unwrap();
        a.send(b"cdef").unwrap();
        a.flush().unwrap();
        let mut buf = [0u8; 6];
        b.recv_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
        assert_eq!(a.stats(), ChannelStats { bytes_sent: 6, bytes_received: 0, flushes: 2 });
    }

    #[test]
    fn mem_channel_reports_disconnect() {
        let (mut a, b) = MemChannel::pair();
        drop(b);
        let mut buf = [0u8; 1];
        assert!(a.recv_exact(&mut buf).is_err());
        a.send(b"x").unwrap();
        assert!(a.flush().is_err());
    }

    #[test]
    fn empty_flush_is_not_counted() {
        let (mut a, _b) = MemChannel::pair();
        a.flush().unwrap();
        assert_eq!(a.stats().flushes, 0);
    }

    #[test]
    fn flushes_are_counted_on_both_bounded_and_unbounded_pairs() {
        // The session layer's `io_ns`/`overlap_ratio` accounting hangs
        // off flush boundaries, so MemChannel must meter them exactly
        // like a real transport — one count per non-empty flush, on
        // every pair flavor.
        for (mut a, mut b) in [MemChannel::pair(), MemChannel::pair_bounded(3)] {
            for round in 1..=3u64 {
                a.send(&[round as u8; 16]).unwrap();
                a.flush().unwrap();
                assert_eq!(a.stats().flushes, round);
                let mut buf = [0u8; 16];
                b.recv_exact(&mut buf).unwrap();
            }
            // A flush with nothing buffered transmits nothing and
            // counts nothing, so flush counts equal wire messages.
            a.flush().unwrap();
            assert_eq!(a.stats().flushes, 3);
            assert_eq!(b.stats().flushes, 0, "the receiver never flushed");
            assert_eq!(a.stats().bytes_sent, b.stats().bytes_received);
        }
    }

    #[test]
    fn bounded_pair_stalls_the_sender_instead_of_buffering_unboundedly() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        use std::time::{Duration, Instant};

        const CAPACITY: usize = 2;
        const TOTAL_FLUSHES: usize = CAPACITY + 5;
        let (mut sender, mut receiver) = MemChannel::pair_bounded(CAPACITY);
        let completed = Arc::new(AtomicUsize::new(0));
        let completed_in_thread = Arc::clone(&completed);
        let producer = thread::spawn(move || {
            for _ in 0..TOTAL_FLUSHES {
                sender.send(&[0u8; 1024]).unwrap();
                sender.flush().unwrap();
                completed_in_thread.fetch_add(1, Ordering::SeqCst);
            }
            sender
        });
        // The producer runs ahead until the queue is full, then stalls:
        // exactly CAPACITY flushes complete, the (CAPACITY+1)-th blocks.
        let deadline = Instant::now() + Duration::from_secs(10);
        while completed.load(Ordering::SeqCst) < CAPACITY {
            assert!(Instant::now() < deadline, "producer never reached the cap");
            thread::yield_now();
        }
        thread::sleep(Duration::from_millis(50));
        assert_eq!(
            completed.load(Ordering::SeqCst),
            CAPACITY,
            "a full queue must block flush, not buffer on"
        );
        // Draining the queue releases the producer; everything arrives.
        let mut buf = [0u8; 1024];
        for _ in 0..TOTAL_FLUSHES {
            receiver.recv_exact(&mut buf).unwrap();
        }
        let sender = producer.join().unwrap();
        assert_eq!(completed.load(Ordering::SeqCst), TOTAL_FLUSHES);
        assert_eq!(sender.stats().flushes, TOTAL_FLUSHES as u64);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_pair_is_rejected() {
        let _ = MemChannel::pair_bounded(0);
    }

    #[test]
    fn mem_channel_read_deadline_times_out_against_a_silent_peer() {
        let (mut a, _b) = MemChannel::pair();
        a.set_io_deadline(Some(Duration::from_millis(20))).unwrap();
        let mut buf = [0u8; 1];
        let err = a.recv_exact(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // Clearing the deadline restores unbounded blocking semantics
        // (verified here only for the disconnect path, which must stay
        // an EOF, not a timeout).
        a.set_io_deadline(None).unwrap();
        drop(_b);
        let err = a.recv_exact(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn mem_channel_flush_deadline_bounds_backpressure() {
        let (mut a, b) = MemChannel::pair_bounded(1);
        a.set_io_deadline(Some(Duration::from_millis(20))).unwrap();
        a.send(b"first").unwrap();
        a.flush().unwrap(); // fills the queue: the peer reads nothing
        a.send(b"second").unwrap();
        let err = a.flush().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        drop(b);
        a.send(b"third").unwrap();
        let err = a.flush().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe, "disconnect beats timeout");
    }

    #[test]
    fn tcp_channel_read_deadline_times_out_against_a_silent_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let keep_open = thread::spawn(move || listener.accept().map(|(s, _)| s));
        let mut client = TcpChannel::connect(addr).unwrap();
        client.set_io_deadline(Some(Duration::from_millis(30))).unwrap();
        let mut buf = [0u8; 1];
        let err = client.recv_exact(&mut buf).unwrap_err();
        assert!(matches!(err.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock), "{err}");
        drop(keep_open.join().unwrap());
    }

    #[test]
    fn tcp_channel_loopback_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut channel = TcpChannel::from_stream(stream).unwrap();
            let mut buf = [0u8; 5];
            channel.recv_exact(&mut buf).unwrap();
            channel.send(&buf).unwrap();
            channel.send(b"!").unwrap();
            channel.flush().unwrap();
            channel.stats()
        });
        let mut client = TcpChannel::connect(addr).unwrap();
        client.send(b"hello").unwrap();
        client.flush().unwrap();
        let mut buf = [0u8; 6];
        client.recv_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello!");
        let server_stats = server.join().unwrap();
        assert_eq!(server_stats.bytes_sent, 6);
        assert_eq!(server_stats.flushes, 1);
        assert_eq!(client.stats().bytes_received, 6);
    }
}
