//! Protocol framing: typed messages over a [`Channel`].
//!
//! Every message is one frame: a 1-byte tag, a 4-byte little-endian
//! payload length, and the payload. Blocks and group elements are 16-byte
//! little-endian; bit strings are count-prefixed and bit-packed. The
//! framing is self-describing enough that a peer speaking a different
//! protocol version fails loudly (unknown tag / length mismatch) instead
//! of desynchronizing.

use haac_core::ReorderKind;
use haac_gc::{Block, HashScheme};

use crate::channel::Channel;
use crate::error::RuntimeError;

/// Upper bound on a single frame payload (64 MiB) — a corrupt or hostile
/// length prefix must not drive allocation.
const MAX_PAYLOAD: usize = 64 << 20;

/// Frame tag of [`Message::Tables`], shared by the owned
/// ([`write_message`]) and borrowed ([`write_tables`]) writers.
const TABLES_TAG: u8 = 6;

/// Frame tag of [`Message::Resume`]. Public because a server dispatches
/// on the first byte of a fresh connection: a service request opens with
/// its own request tag, a reconnect opens with a raw `Resume` frame.
pub const RESUME_TAG: u8 = 11;

/// Session parameters the garbler announces before streaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionHeader {
    /// Garbler input bits the circuit expects.
    pub garbler_inputs: u32,
    /// Evaluator input bits the circuit expects.
    pub evaluator_inputs: u32,
    /// Total gates (order-of-battle check between the two circuit copies).
    pub num_gates: u64,
    /// Total AND tables that will be streamed.
    pub num_tables: u64,
    /// The gate-hash construction in use.
    pub scheme: HashScheme,
    /// Sliding-wire-window capacity (in wire labels) the garbler planned
    /// streaming around.
    pub window_wires: u32,
    /// Tables per streamed chunk (the window's slide granularity).
    pub chunk_tables: u32,
    /// The instruction schedule the garbler lowered with. The evaluator
    /// must have lowered identically — reordered transcripts are only a
    /// valid protocol when both parties agree — so a mismatch is
    /// refused before any table is streamed.
    pub reorder: ReorderKind,
    /// How evaluator-input labels are delivered. Both parties drive the
    /// same OT message flow, so — like `reorder` — a mismatch is refused
    /// before any OT round runs.
    pub ot_mode: OtMode,
    /// Cumulative-ack cadence: the evaluator sends a [`Message::ChunkAck`]
    /// after every `ack_interval` table chunks. The garbler's replay
    /// buffer (and therefore its backpressure point) is sized from this.
    pub ack_interval: u32,
}

/// How a session delivers the evaluator's input labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OtMode {
    /// One Chou–Orlandi base OT per evaluator input bit (three
    /// public-key exponentiations each).
    #[default]
    Base,
    /// IKNP-style OT extension: ~128 base OTs (roles reversed)
    /// bootstrap one cheap AES-evaluated correlated OT per input bit.
    Extended,
}

impl OtMode {
    /// The human-readable spelling (error messages, metrics labels).
    pub fn label(self) -> &'static str {
        match self {
            OtMode::Base => "base",
            OtMode::Extended => "extended",
        }
    }
}

/// Wire tag of an [`OtMode`] (shared by the session header and the
/// server's request/ack frames).
pub fn ot_mode_tag(mode: OtMode) -> u8 {
    match mode {
        OtMode::Base => 0,
        OtMode::Extended => 1,
    }
}

/// Decodes an [`OtMode`] wire tag.
///
/// # Errors
///
/// Returns a protocol error for an unknown tag.
pub fn ot_mode_from_tag(tag: u8) -> Result<OtMode, RuntimeError> {
    match tag {
        0 => Ok(OtMode::Base),
        1 => Ok(OtMode::Extended),
        other => Err(RuntimeError::protocol(format!("unknown OT mode tag {other}"))),
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Session parameters (garbler → evaluator, first).
    Header(SessionHeader),
    /// Active labels for the garbler's own inputs (garbler → evaluator).
    GarblerInputs(Vec<Block>),
    /// Base-OT sender public point `S` plus the batch nonce folded into
    /// key derivation. Garbler → evaluator in base mode; evaluator →
    /// garbler in extended mode, where the base-OT roles reverse.
    OtSetup {
        /// The sender's public point `S = g^y`.
        point: u128,
        /// The sender-sampled per-batch nonce.
        nonce: u128,
    },
    /// Base-OT blinded points, one per choice bit (base-OT receiver →
    /// sender; the direction follows the mode, as with `OtSetup`).
    OtPoints(Vec<u128>),
    /// Base-OT ciphertext pairs (base-OT sender → receiver).
    OtCiphertexts(Vec<[Block; 2]>),
    /// OT extension `u` matrix: κ columns of `⌈m/κ⌉` packed bit blocks,
    /// flattened column-major (evaluator → garbler).
    OtExtMatrix(Vec<Block>),
    /// OT extension masked label pairs, one per evaluator input
    /// (garbler → evaluator).
    OtExtLabels(Vec<[Block; 2]>),
    /// One chunk of garbled AND tables, in gate order (garbler → evaluator).
    Tables {
        /// Position of this frame in the session's stream-frame sequence
        /// (table chunks first, then the output-decode frame). Resume is
        /// byte replay addressed by this cursor.
        seq: u64,
        /// The chunk's garbled tables.
        tables: Vec<[Block; 2]>,
    },
    /// Output decode string (garbler → evaluator, after the last chunk).
    OutputDecode(Vec<bool>),
    /// Decoded cleartext outputs (evaluator → garbler, output sharing).
    Outputs(Vec<bool>),
    /// Cumulative stream acknowledgement (evaluator → garbler): every
    /// frame with `seq < upto_seq` has been received and fed, so the
    /// garbler may drop it from its replay buffer.
    ChunkAck {
        /// Exclusive upper bound of the acknowledged prefix.
        upto_seq: u64,
    },
    /// Reconnect hello (evaluator → garbler on a **fresh** connection):
    /// resume the suspended session identified by `ticket` from stream
    /// frame `next_seq`.
    Resume {
        /// Opaque ticket issued with the original session ack.
        ticket: u128,
        /// First stream frame the evaluator has not yet received.
        next_seq: u64,
    },
    /// Resume acceptance (garbler → evaluator): replay starts at
    /// `from_seq`, which must equal the requested `next_seq`.
    ResumeAck {
        /// First frame the garbler will (re)send.
        from_seq: u64,
    },
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::Header(_) => 1,
            Message::GarblerInputs(_) => 2,
            Message::OtSetup { .. } => 3,
            Message::OtPoints(_) => 4,
            Message::OtCiphertexts(_) => 5,
            Message::Tables { .. } => TABLES_TAG,
            Message::OutputDecode(_) => 7,
            Message::Outputs(_) => 8,
            Message::OtExtMatrix(_) => 9,
            Message::OtExtLabels(_) => 10,
            Message::Resume { .. } => RESUME_TAG,
            Message::ResumeAck { .. } => 12,
            Message::ChunkAck { .. } => 13,
        }
    }

    /// A short human-readable name (for error messages).
    pub fn name(&self) -> &'static str {
        match self {
            Message::Header(_) => "Header",
            Message::GarblerInputs(_) => "GarblerInputs",
            Message::OtSetup { .. } => "OtSetup",
            Message::OtPoints(_) => "OtPoints",
            Message::OtCiphertexts(_) => "OtCiphertexts",
            Message::Tables { .. } => "Tables",
            Message::OutputDecode(_) => "OutputDecode",
            Message::Outputs(_) => "Outputs",
            Message::OtExtMatrix(_) => "OtExtMatrix",
            Message::OtExtLabels(_) => "OtExtLabels",
            Message::Resume { .. } => "Resume",
            Message::ResumeAck { .. } => "ResumeAck",
            Message::ChunkAck { .. } => "ChunkAck",
        }
    }
}

fn scheme_tag(scheme: HashScheme) -> u8 {
    match scheme {
        HashScheme::Rekeyed => 0,
        HashScheme::FixedKey => 1,
    }
}

fn scheme_from_tag(tag: u8) -> Result<HashScheme, RuntimeError> {
    match tag {
        0 => Ok(HashScheme::Rekeyed),
        1 => Ok(HashScheme::FixedKey),
        other => Err(RuntimeError::protocol(format!("unknown hash scheme tag {other}"))),
    }
}

/// Wire tag of a [`ReorderKind`] (shared by the session header and the
/// server's request frame).
pub fn reorder_tag(reorder: ReorderKind) -> u8 {
    match reorder {
        ReorderKind::Baseline => 0,
        ReorderKind::Full => 1,
        ReorderKind::Segment => 2,
    }
}

/// Decodes a [`ReorderKind`] wire tag.
///
/// # Errors
///
/// Returns a protocol error for an unknown tag.
pub fn reorder_from_tag(tag: u8) -> Result<ReorderKind, RuntimeError> {
    match tag {
        0 => Ok(ReorderKind::Baseline),
        1 => Ok(ReorderKind::Full),
        2 => Ok(ReorderKind::Segment),
        other => Err(RuntimeError::protocol(format!("unknown reorder kind tag {other}"))),
    }
}

fn push_blocks(payload: &mut Vec<u8>, blocks: &[Block]) {
    payload.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for block in blocks {
        payload.extend_from_slice(&block.to_bytes());
    }
}

fn push_tables(payload: &mut Vec<u8>, tables: &[[Block; 2]]) {
    payload.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for table in tables {
        payload.extend_from_slice(&table[0].to_bytes());
        payload.extend_from_slice(&table[1].to_bytes());
    }
}

fn push_bits(payload: &mut Vec<u8>, bits: &[bool]) {
    payload.extend_from_slice(&(bits.len() as u32).to_le_bytes());
    let mut byte = 0u8;
    for (i, &bit) in bits.iter().enumerate() {
        byte |= (bit as u8) << (i % 8);
        if i % 8 == 7 {
            payload.push(byte);
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        payload.push(byte);
    }
}

/// Serializes and sends one message. Does **not** flush — the session
/// layer owns flush boundaries.
///
/// # Errors
///
/// Propagates channel I/O failures.
pub fn write_message<C: Channel + ?Sized>(
    channel: &mut C,
    message: &Message,
) -> Result<(), RuntimeError> {
    // The streaming hot path writes table chunks without owning them;
    // one implementation serves both entry points.
    if let Message::Tables { seq, tables } = message {
        return write_tables(channel, *seq, tables);
    }
    let payload = encode_payload(message);
    if payload.len() > MAX_PAYLOAD {
        // The receiver enforces the same bound; sending an oversized frame
        // would be accepted by the transport and then kill the session at
        // the peer (and beyond u32::MAX the length prefix would wrap).
        return Err(RuntimeError::protocol(format!(
            "{} frame of {} bytes exceeds the {} byte limit",
            message.name(),
            payload.len(),
            MAX_PAYLOAD
        )));
    }
    channel.send(&[message.tag()])?;
    channel.send(&(payload.len() as u32).to_le_bytes())?;
    channel.send(&payload)?;
    Ok(())
}

/// Serializes every non-`Tables` message's payload (the `Tables` hot
/// path streams straight to the channel and never builds this `Vec`).
fn encode_payload(message: &Message) -> Vec<u8> {
    let mut payload = Vec::new();
    match message {
        Message::Header(h) => {
            payload.extend_from_slice(&h.garbler_inputs.to_le_bytes());
            payload.extend_from_slice(&h.evaluator_inputs.to_le_bytes());
            payload.extend_from_slice(&h.num_gates.to_le_bytes());
            payload.extend_from_slice(&h.num_tables.to_le_bytes());
            payload.push(scheme_tag(h.scheme));
            payload.extend_from_slice(&h.window_wires.to_le_bytes());
            payload.extend_from_slice(&h.chunk_tables.to_le_bytes());
            payload.extend_from_slice(&h.ack_interval.to_le_bytes());
            payload.push(reorder_tag(h.reorder));
            payload.push(ot_mode_tag(h.ot_mode));
        }
        Message::GarblerInputs(labels) => push_blocks(&mut payload, labels),
        Message::OtSetup { point, nonce } => {
            payload.extend_from_slice(&point.to_le_bytes());
            payload.extend_from_slice(&nonce.to_le_bytes());
        }
        Message::OtPoints(points) => {
            payload.extend_from_slice(&(points.len() as u32).to_le_bytes());
            for point in points {
                payload.extend_from_slice(&point.to_le_bytes());
            }
        }
        Message::OtCiphertexts(pairs) | Message::OtExtLabels(pairs) => {
            push_tables(&mut payload, pairs)
        }
        Message::OtExtMatrix(blocks) => push_blocks(&mut payload, blocks),
        Message::Tables { seq, tables } => {
            payload.extend_from_slice(&seq.to_le_bytes());
            push_tables(&mut payload, tables);
        }
        Message::OutputDecode(bits) | Message::Outputs(bits) => push_bits(&mut payload, bits),
        Message::Resume { ticket, next_seq } => {
            payload.extend_from_slice(&ticket.to_le_bytes());
            payload.extend_from_slice(&next_seq.to_le_bytes());
        }
        Message::ResumeAck { from_seq } => payload.extend_from_slice(&from_seq.to_le_bytes()),
        Message::ChunkAck { upto_seq } => payload.extend_from_slice(&upto_seq.to_le_bytes()),
    }
    payload
}

/// Serializes one message into its exact wire frame (tag + length +
/// payload) — the bytes a resumable garbler stashes in its replay
/// buffer so that resume is byte replay, never re-encoding.
///
/// # Errors
///
/// Rejects oversized payloads (same bound the channel writers enforce).
pub fn encode_frame(message: &Message) -> Result<Vec<u8>, RuntimeError> {
    let payload = encode_payload(message);
    if payload.len() > MAX_PAYLOAD {
        return Err(RuntimeError::protocol(format!(
            "{} frame of {} bytes exceeds the {} byte limit",
            message.name(),
            payload.len(),
            MAX_PAYLOAD
        )));
    }
    let mut frame = Vec::with_capacity(5 + payload.len());
    frame.push(message.tag());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Serializes one `Tables` frame from a borrowed slice into its exact
/// wire bytes — byte-identical to [`write_tables`], allocation-owned so
/// the caller can both send and stash the same buffer.
///
/// # Errors
///
/// Rejects oversized chunks.
pub fn encode_tables_frame(seq: u64, tables: &[[Block; 2]]) -> Result<Vec<u8>, RuntimeError> {
    let payload_len = 8 + 4 + 32 * tables.len();
    if payload_len > MAX_PAYLOAD {
        return Err(RuntimeError::protocol(format!(
            "Tables frame of {payload_len} bytes exceeds the {MAX_PAYLOAD} byte limit"
        )));
    }
    let mut frame = Vec::with_capacity(5 + payload_len);
    frame.push(TABLES_TAG);
    frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for table in tables {
        frame.extend_from_slice(&table[0].to_bytes());
        frame.extend_from_slice(&table[1].to_bytes());
    }
    Ok(frame)
}

/// Serializes and sends one `Tables` frame from a **borrowed** slice —
/// wire-identical to `write_message(&Message::Tables(..))` but without
/// moving the tables into a `Message`, so the session layer can reuse
/// one chunk buffer for the whole stream. Does not flush.
///
/// # Errors
///
/// Propagates channel I/O failures; rejects oversized chunks.
pub fn write_tables<C: Channel + ?Sized>(
    channel: &mut C,
    seq: u64,
    tables: &[[Block; 2]],
) -> Result<(), RuntimeError> {
    let payload_len = 8 + 4 + 32 * tables.len();
    if payload_len > MAX_PAYLOAD {
        return Err(RuntimeError::protocol(format!(
            "Tables frame of {payload_len} bytes exceeds the {MAX_PAYLOAD} byte limit"
        )));
    }
    channel.send(&[TABLES_TAG])?;
    channel.send(&(payload_len as u32).to_le_bytes())?;
    channel.send(&seq.to_le_bytes())?;
    channel.send(&(tables.len() as u32).to_le_bytes())?;
    for table in tables {
        channel.send(&table[0].to_bytes())?;
        channel.send(&table[1].to_bytes())?;
    }
    Ok(())
}

struct PayloadReader {
    bytes: Vec<u8>,
    pos: usize,
}

impl PayloadReader {
    fn take(&mut self, n: usize) -> Result<&[u8], RuntimeError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or_else(|| RuntimeError::protocol("frame payload truncated"))?;
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, RuntimeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, RuntimeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn u128(&mut self) -> Result<u128, RuntimeError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16 bytes")))
    }

    fn u8(&mut self) -> Result<u8, RuntimeError> {
        Ok(self.take(1)?[0])
    }

    fn block(&mut self) -> Result<Block, RuntimeError> {
        Ok(Block::from_bytes(self.take(16)?.try_into().expect("16 bytes")))
    }

    /// Bytes of payload not yet consumed.
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn counted<T>(
        &mut self,
        per_item_bytes: usize,
        read: impl Fn(&mut Self) -> Result<T, RuntimeError>,
    ) -> Result<Vec<T>, RuntimeError> {
        let count = self.u32()? as usize;
        // The count prefix is untrusted: the items it promises must
        // actually be present in the (already length-capped) payload
        // before a single element is allocated — a hostile 4-byte count
        // in a tiny frame must not drive a giant `Vec` reservation.
        if count.saturating_mul(per_item_bytes) > self.remaining() {
            return Err(RuntimeError::protocol(format!(
                "count {count} exceeds the {} bytes of frame payload",
                self.remaining()
            )));
        }
        (0..count).map(|_| read(self)).collect()
    }

    fn bits(&mut self) -> Result<Vec<bool>, RuntimeError> {
        let count = self.u32()? as usize;
        // Same cap as `counted`: never trust the prefix beyond the bytes
        // that actually arrived (8 bits per payload byte).
        if count.div_ceil(8) > self.remaining() {
            return Err(RuntimeError::protocol(format!(
                "bit count {count} exceeds the {} bytes of frame payload",
                self.remaining()
            )));
        }
        let bytes = self.take(count.div_ceil(8))?;
        Ok((0..count).map(|i| (bytes[i / 8] >> (i % 8)) & 1 == 1).collect())
    }

    fn finish(self) -> Result<(), RuntimeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(RuntimeError::protocol("frame payload has trailing bytes"))
        }
    }
}

/// Receives and decodes one message (blocking).
///
/// # Errors
///
/// Propagates channel I/O failures and rejects malformed frames.
pub fn read_message<C: Channel + ?Sized>(channel: &mut C) -> Result<Message, RuntimeError> {
    let mut tag = [0u8; 1];
    channel.recv_exact(&mut tag)?;
    let mut len = [0u8; 4];
    channel.recv_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_PAYLOAD {
        return Err(RuntimeError::protocol(format!("frame of {len} bytes exceeds limit")));
    }
    let mut bytes = vec![0u8; len];
    channel.recv_exact(&mut bytes)?;
    let mut r = PayloadReader { bytes, pos: 0 };

    let message = match tag[0] {
        1 => Message::Header(SessionHeader {
            garbler_inputs: r.u32()?,
            evaluator_inputs: r.u32()?,
            num_gates: r.u64()?,
            num_tables: r.u64()?,
            scheme: scheme_from_tag(r.u8()?)?,
            window_wires: r.u32()?,
            chunk_tables: r.u32()?,
            ack_interval: r.u32()?,
            reorder: reorder_from_tag(r.u8()?)?,
            ot_mode: ot_mode_from_tag(r.u8()?)?,
        }),
        2 => Message::GarblerInputs(r.counted(16, PayloadReader::block)?),
        3 => Message::OtSetup { point: r.u128()?, nonce: r.u128()? },
        4 => Message::OtPoints(r.counted(16, PayloadReader::u128)?),
        5 => Message::OtCiphertexts(r.counted(32, |r| Ok([r.block()?, r.block()?]))?),
        TABLES_TAG => Message::Tables {
            seq: r.u64()?,
            tables: r.counted(32, |r| Ok([r.block()?, r.block()?]))?,
        },
        7 => Message::OutputDecode(r.bits()?),
        8 => Message::Outputs(r.bits()?),
        9 => Message::OtExtMatrix(r.counted(16, PayloadReader::block)?),
        10 => Message::OtExtLabels(r.counted(32, |r| Ok([r.block()?, r.block()?]))?),
        RESUME_TAG => Message::Resume { ticket: r.u128()?, next_seq: r.u64()? },
        12 => Message::ResumeAck { from_seq: r.u64()? },
        13 => Message::ChunkAck { upto_seq: r.u64()? },
        other => return Err(RuntimeError::protocol(format!("unknown frame tag {other}"))),
    };
    r.finish()?;
    Ok(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::MemChannel;

    fn round_trip(message: Message) {
        let (mut a, mut b) = MemChannel::pair();
        write_message(&mut a, &message).unwrap();
        a.flush().unwrap();
        let got = read_message(&mut b).unwrap();
        assert_eq!(got, message);
    }

    #[test]
    fn all_message_kinds_round_trip() {
        for reorder in [ReorderKind::Baseline, ReorderKind::Full, ReorderKind::Segment] {
            for ot_mode in [OtMode::Base, OtMode::Extended] {
                round_trip(Message::Header(SessionHeader {
                    garbler_inputs: 32,
                    evaluator_inputs: 32,
                    num_gates: 1234,
                    num_tables: 567,
                    scheme: HashScheme::Rekeyed,
                    window_wires: 4096,
                    chunk_tables: 2048,
                    reorder,
                    ot_mode,
                    ack_interval: 16,
                }));
            }
        }
        round_trip(Message::GarblerInputs(vec![Block::from(1u128), Block::from(2u128)]));
        round_trip(Message::OtSetup { point: 0xDEAD_BEEFu128, nonce: 0xFACEu128 });
        round_trip(Message::OtPoints(vec![3, 5, 7]));
        round_trip(Message::OtCiphertexts(vec![[Block::from(9u128), Block::from(10u128)]]));
        round_trip(Message::OtExtMatrix(vec![Block::from(21u128), Block::from(22u128)]));
        round_trip(Message::OtExtLabels(vec![[Block::from(31u128), Block::from(32u128)]]));
        round_trip(Message::Tables {
            seq: 42,
            tables: vec![
                [Block::from(11u128), Block::from(12u128)],
                [Block::from(13u128), Block::from(14u128)],
            ],
        });
        round_trip(Message::OutputDecode(vec![
            true, false, true, true, false, true, false, true, true,
        ]));
        round_trip(Message::Outputs(Vec::new()));
        round_trip(Message::Resume { ticket: 0x0123_4567_89AB_CDEFu128, next_seq: 77 });
        round_trip(Message::ResumeAck { from_seq: 77 });
        round_trip(Message::ChunkAck { upto_seq: u64::MAX });
    }

    #[test]
    fn bit_packing_handles_all_residues() {
        for n in 0..20usize {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            round_trip(Message::Outputs(bits));
        }
    }

    #[test]
    fn borrowed_table_writer_matches_owned_message() {
        let tables = vec![
            [Block::from(1u128), Block::from(2u128)],
            [Block::from(3u128), Block::from(4u128)],
        ];
        let (mut a, mut b) = MemChannel::pair();
        write_tables(&mut a, 9, &tables).unwrap();
        a.flush().unwrap();
        let got = read_message(&mut b).unwrap();
        assert_eq!(got, Message::Tables { seq: 9, tables: tables.clone() });
        // Byte-identical framing: same bytes_sent as the owned path.
        let (mut c, _d) = MemChannel::pair();
        write_message(&mut c, &Message::Tables { seq: 9, tables }).unwrap();
        assert_eq!(a.stats().bytes_sent, c.stats().bytes_sent);
    }

    #[test]
    fn encoded_frames_match_the_channel_writers_byte_for_byte() {
        let tables = vec![
            [Block::from(5u128), Block::from(6u128)],
            [Block::from(7u128), Block::from(8u128)],
        ];
        // The replay-buffer encoder must produce exactly what the live
        // writers put on the wire — resume correctness is byte replay.
        let frame = encode_tables_frame(3, &tables).unwrap();
        let (mut a, mut b) = MemChannel::pair();
        a.send(&frame).unwrap();
        a.flush().unwrap();
        assert_eq!(
            read_message(&mut b).unwrap(),
            Message::Tables { seq: 3, tables: tables.clone() }
        );
        let (mut c, _d) = MemChannel::pair();
        write_tables(&mut c, 3, &tables).unwrap();
        assert_eq!(frame.len() as u64, c.stats().bytes_sent);

        let decode = Message::OutputDecode(vec![true, false, true]);
        let frame = encode_frame(&decode).unwrap();
        let (mut e, mut f) = MemChannel::pair();
        e.send(&frame).unwrap();
        e.flush().unwrap();
        assert_eq!(read_message(&mut f).unwrap(), decode);
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let (mut a, mut b) = MemChannel::pair();
        a.send(&[250u8]).unwrap();
        a.send(&0u32.to_le_bytes()).unwrap();
        a.flush().unwrap();
        let err = read_message(&mut b).unwrap_err();
        assert!(err.to_string().contains("unknown frame tag"));
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocating() {
        let (mut a, mut b) = MemChannel::pair();
        a.send(&[6u8]).unwrap();
        a.send(&u32::MAX.to_le_bytes()).unwrap();
        a.flush().unwrap();
        let err = read_message(&mut b).unwrap_err();
        assert!(err.to_string().contains("exceeds limit"));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (mut a, mut b) = MemChannel::pair();
        a.send(&[3u8]).unwrap(); // OtSetup: exactly 32 bytes expected
        a.send(&33u32.to_le_bytes()).unwrap();
        a.send(&[0u8; 33]).unwrap();
        a.flush().unwrap();
        let err = read_message(&mut b).unwrap_err();
        assert!(err.to_string().contains("trailing bytes"));
    }

    #[test]
    fn ot_mode_tags_round_trip_and_reject_unknowns() {
        for mode in [OtMode::Base, OtMode::Extended] {
            assert_eq!(ot_mode_from_tag(ot_mode_tag(mode)).unwrap(), mode);
        }
        assert!(ot_mode_from_tag(9).is_err());
    }
}
