//! # haac-runtime — streaming two-party GC execution
//!
//! The paper's core observation is that garbled circuits are a
//! *streaming* workload (§2.2): the garbler produces tables in gate
//! order, the evaluator consumes each exactly once, and neither ever
//! revisits one. This crate turns that observation into a runtime: a
//! real two-party protocol (garbler ↔ evaluator) over pluggable byte
//! [`Channel`]s, streaming tables in chunks sized by the compiler's
//! sliding-wire-window model and holding O(window) live wires instead of
//! O(circuit).
//!
//! | Layer | Contents |
//! |-------|----------|
//! | [`channel`] | [`Channel`] trait, [`MemChannel`] (in-process), [`TcpChannel`] (real sockets), traffic accounting, per-operation I/O deadlines |
//! | [`fault`] | [`FaultChannel`]: deterministic, seeded fault injection (delays, corruption, partial writes, disconnects, read stalls) for chaos testing |
//! | [`wire`] | Framed protocol messages: header, input labels, base-OT flow, table chunks, outputs |
//! | [`session`] | [`run_garbler`] / [`run_evaluator`] drivers, [`SessionConfig`], [`SessionReport`] (bytes, chunks, peak live wires, AES work, gates/s) |
//!
//! The cryptography lives in `haac-gc` ([`StreamingGarbler`] /
//! [`StreamingEvaluator`] and the Chou–Orlandi-style base OT); this crate
//! owns transports, framing, and the end-to-end choreography.
//!
//! # Quickstart (in-process)
//!
//! ```
//! use haac_circuit::Builder;
//! use haac_runtime::{run_local_session, SessionConfig};
//!
//! // Millionaires' problem: is Alice richer than Bob?
//! let mut b = Builder::new();
//! let alice = b.input_garbler(32);
//! let bob = b.input_evaluator(32);
//! let alice_richer = b.gt_u(&alice, &bob);
//! let circuit = b.finish(vec![alice_richer]).unwrap();
//!
//! let (report, _) = run_local_session(
//!     &circuit,
//!     &haac_circuit::to_bits(5_000_000, 32),
//!     &haac_circuit::to_bits(3_141_592, 32),
//!     42,
//!     &SessionConfig::for_circuit(&circuit),
//! )
//! .unwrap();
//! assert_eq!(report.outputs, vec![true]);
//! assert!(report.within_window);
//! ```
//!
//! # Over TCP
//!
//! Each party runs the same code with a [`TcpChannel`] instead (see
//! `examples/two_party_tcp.rs` in the workspace root for a runnable
//! version):
//!
//! ```no_run
//! # use haac_circuit::Builder;
//! # use haac_runtime::{run_evaluator, run_garbler, SessionConfig, TcpChannel};
//! # use rand::{rngs::StdRng, SeedableRng};
//! # let mut b = Builder::new();
//! # let x = b.input_garbler(1); let y = b.input_evaluator(1);
//! # let o = b.and(x[0], y[0]);
//! # let circuit = b.finish(vec![o]).unwrap();
//! # let garbler_bits = vec![true]; let evaluator_bits = vec![true];
//! // Garbler process:
//! let mut channel = TcpChannel::connect("127.0.0.1:7700").unwrap();
//! let mut rng = StdRng::seed_from_u64(1);
//! let config = SessionConfig::for_circuit(&circuit);
//! let report = run_garbler(&circuit, &garbler_bits, &mut rng, &config, &mut channel).unwrap();
//!
//! // Evaluator process (elsewhere):
//! // let listener = std::net::TcpListener::bind("0.0.0.0:7700").unwrap();
//! // let (stream, _) = listener.accept().unwrap();
//! // let mut channel = TcpChannel::from_stream(stream).unwrap();
//! // let report = run_evaluator(&circuit, &evaluator_bits, &mut rng, &mut channel).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
mod error;
pub mod fault;
pub mod session;
pub mod wire;

pub use channel::{Channel, ChannelStats, MemChannel, TcpChannel, DEFAULT_MEM_CHANNEL_CAPACITY};
pub use error::{RuntimeError, SessionPhase};
pub use fault::{FaultChannel, FaultDelay, FaultSpec};
pub use session::{
    run_evaluator, run_evaluator_resumable, run_evaluator_with, run_garbler, run_garbler_banked,
    run_garbler_resumable, run_local_session, run_tcp_session, GarblerSource, SessionConfig,
    SessionDeadlines, SessionReport, SessionRole, SessionTelemetry, DEFAULT_ACK_INTERVAL,
    MAX_PIPELINE_DEPTH, PIPELINE_DEPTH,
};
pub use wire::OtMode;

// Re-exported so callers can cache lowered plans — and negotiate the
// schedule they were lowered with — without importing haac-core
// directly.
pub use haac_core::lower::{
    lower_for_streaming, lower_with_reorder, lower_with_window, StreamingPlan,
};
pub use haac_core::ReorderKind;

// Re-exported so downstream code can name the streaming primitives and
// the cipher-work counters carried by SessionReport without importing
// haac-gc directly.
pub use haac_gc::{
    BankedGarbler, CryptoCounters, PlanGarbling, StreamingEvaluator, StreamingGarbler,
};
