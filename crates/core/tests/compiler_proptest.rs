//! Property tests for the optimizing compiler (paper §4).
//!
//! For random well-formed circuits and every [`ReorderKind`], the
//! reordered + renamed program must be *topologically valid* — every
//! operand resolves to an input or an earlier instruction's output, as
//! [`Program::validate`] and a direct renamed-address check both attest
//! — and compiling (reorder → rename → ESW → OoR marking) must preserve
//! GC semantics exactly: executing the lowered stream through the
//! modeled SWW/OoRW memory yields outputs bit-identical to plaintext
//! evaluation of the untouched netlist, at every window size.

use haac_circuit::{Bit, Builder, Circuit};
use haac_core::compiler::{compile, reorder, ReorderKind};
use haac_core::exec::run_gc_through_streams;
use haac_core::WindowModel;
use haac_gc::HashScheme;
use proptest::collection::vec;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

const ALL_KINDS: [ReorderKind; 3] =
    [ReorderKind::Baseline, ReorderKind::Full, ReorderKind::Segment];

/// Builds a random but well-formed circuit from a script of gate picks:
/// each step reads wires already in the pool, so the netlist is SSA and
/// topological by construction (the same invariant `Circuit::new`
/// enforces).
fn random_circuit(script: &[(u8, u16, u16)], inputs: u32) -> Circuit {
    let mut b = Builder::new();
    let g = b.input_garbler(inputs / 2);
    let e = b.input_evaluator(inputs - inputs / 2);
    let mut pool: Vec<Bit> = g.into_iter().chain(e).collect();
    for &(op, i, j) in script {
        let x = pool[i as usize % pool.len()];
        let y = pool[j as usize % pool.len()];
        let out = match op % 4 {
            0 => b.and(x, y),
            1 => b.xor(x, y),
            2 => b.not(x),
            _ => b.mux(x, y, pool[(i as usize + 1) % pool.len()]),
        };
        pool.push(out);
    }
    let n = pool.len();
    let outputs: Vec<Bit> = pool.into_iter().skip(n.saturating_sub(8)).collect();
    b.finish(outputs).expect("random circuit is valid")
}

fn random_bits(seed: u64, n: usize) -> Vec<bool> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_reorder_is_topologically_valid_and_renamed(
        script in vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..80),
        inputs in 2u32..12,
        window_exp in 2u32..9,
    ) {
        let circuit = random_circuit(&script, inputs);
        let window = WindowModel::new(1 << window_exp);
        for kind in ALL_KINDS {
            let program = reorder(&circuit, kind, window);
            prop_assert!(program.validate().is_ok(), "{kind:?}: {:?}", program.validate());
            // Renaming makes validity directly checkable: instruction j
            // writes address first_out + j, so every operand must point
            // strictly below its own output — an input or an earlier
            // instruction — never forward.
            let first_out = program.first_output_addr();
            for (j, instr) in program.instructions.iter().enumerate() {
                let out_addr = first_out + j as u32;
                for operand in [instr.a, instr.b].iter().take(instr.num_operands()) {
                    prop_assert!(
                        *operand < out_addr && *operand >= 1,
                        "{kind:?}: instruction {j} reads {operand} at or above its own output {out_addr}"
                    );
                }
            }
            // The schedule is a permutation of the gates, not a subset.
            let mut seen = program.source_gate.clone();
            seen.sort_unstable();
            prop_assert_eq!(
                seen,
                (0..circuit.num_gates() as u32).collect::<Vec<_>>(),
                "{:?} must permute all gates", kind
            );
        }
    }

    #[test]
    fn compiled_streams_match_plaintext_for_every_reorder(
        script in vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..60),
        inputs in 2u32..12,
        window_exp in 2u32..8,
        seed in any::<u64>(),
    ) {
        let circuit = random_circuit(&script, inputs);
        let g_bits = random_bits(seed, circuit.garbler_inputs() as usize);
        let e_bits = random_bits(seed ^ 0xABCD, circuit.evaluator_inputs() as usize);
        let expected = circuit.eval(&g_bits, &e_bits).expect("plaintext baseline");
        let window = WindowModel::new(1 << window_exp);
        for kind in ALL_KINDS {
            let (lowered, stats) = compile(&circuit, kind, window);
            prop_assert!(lowered.program.validate().is_ok(), "{kind:?}");
            prop_assert_eq!(stats.and_count, circuit.num_and_gates(), "{:?}", kind);
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(kind.label().len() as u64));
            let got = run_gc_through_streams(
                &lowered,
                window,
                &g_bits,
                &e_bits,
                &mut rng,
                HashScheme::Rekeyed,
            );
            match got {
                Ok(bits) => prop_assert_eq!(
                    &bits, &expected,
                    "{:?} window={} changed the function", kind, window.sww_wires()
                ),
                Err(e) => prop_assert!(
                    false,
                    "{kind:?} window={} violated the memory discipline: {e}",
                    window.sww_wires()
                ),
            }
        }
    }
}
