//! Cycle-level HAAC simulator (paper §5 "Simulator").
//!
//! Models the accelerator of Fig. 3: `N` deeply pipelined gate engines
//! (21-stage Garbler / 18-stage Evaluator half-gate units, 1-cycle
//! FreeXOR), a banked sliding-wire-window scratchpad (4 banks per GE at
//! 2 GHz against a 1 GHz GE clock), per-GE instruction/table/OoRW
//! queues, a wire-forwarding network, and a streaming DRAM interface
//! (DDR4-4400 at 35.2 GB/s or HBM2 at 512 GB/s).
//!
//! Following the paper's co-design, simulation runs in two passes:
//!
//! 1. **Mapping** ([`map_to_ges`]): the compiler maps instructions onto
//!    non-stalled GEs cycle by cycle with idealized memory, recording
//!    per-GE streams ("saving the order, and replaying it in hardware").
//! 2. **Replay** ([`simulate`]): the recorded streams execute against the
//!    full memory system — queues fill at DRAM bandwidth, table/OoRW
//!    pops block when streams fall behind, live wires drain write
//!    bandwidth — producing the reported cycle count.

use crate::compiler::LoweredProgram;
use crate::isa::{Opcode, Program, OOR_SENTINEL};
use crate::window::WindowModel;

/// Off-chip memory technology (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DramKind {
    /// DDR4-4400: 35.2 GB/s.
    #[default]
    Ddr4,
    /// One HBM2 PHY: 512 GB/s.
    Hbm2,
    /// Infinite bandwidth (isolates compute time, as in Fig. 7).
    Infinite,
}

impl DramKind {
    /// Peak bandwidth in bytes per second.
    pub fn bytes_per_second(self) -> f64 {
        match self {
            DramKind::Ddr4 => 35.2e9,
            DramKind::Hbm2 => 512.0e9,
            DramKind::Infinite => f64::INFINITY,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            DramKind::Ddr4 => "DDR4",
            DramKind::Hbm2 => "HBM2",
            DramKind::Infinite => "Infinite",
        }
    }
}

/// Which party's pipeline the GEs implement (§3.2: the Garbler half-gate
/// unit is 21 stages, the Evaluator's 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Role {
    /// Garbler pipeline (4 hashes per AND; 21 stages).
    Garbler,
    /// Evaluator pipeline (2 hashes per AND; 18 stages).
    #[default]
    Evaluator,
}

impl Role {
    /// Half-gate pipeline depth in cycles.
    pub fn halfgate_latency(self) -> u64 {
        match self {
            Role::Garbler => 21,
            Role::Evaluator => 18,
        }
    }
}

/// Accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HaacConfig {
    /// Number of gate engines (the paper evaluates 1–16).
    pub num_ges: usize,
    /// SWW capacity in bytes (16 B per wire label).
    pub sww_bytes: usize,
    /// SWW banks per GE (§5: 4 works well).
    pub banks_per_ge: usize,
    /// Off-chip memory model.
    pub dram: DramKind,
    /// Garbler or Evaluator pipelines.
    pub role: Role,
    /// GE clock in GHz (§5: 1 GHz; the SWW runs at 2 GHz, modeled as two
    /// bank accesses per GE cycle).
    pub ge_clock_ghz: f64,
    /// Per-GE instruction queue capacity (entries).
    pub instr_queue: usize,
    /// Per-GE table queue capacity (tables).
    pub table_queue: usize,
    /// Per-GE OoRW queue capacity (wires).
    pub oorw_queue: usize,
}

impl Default for HaacConfig {
    fn default() -> Self {
        // The paper's headline configuration: 16 GEs, 2 MB SWW, 64 banks,
        // 64 KB of queue SRAM (split across the three queue types).
        HaacConfig {
            num_ges: 16,
            sww_bytes: 2 * 1024 * 1024,
            banks_per_ge: 4,
            dram: DramKind::Ddr4,
            role: Role::Evaluator,
            ge_clock_ghz: 1.0,
            instr_queue: 256,
            table_queue: 64,
            oorw_queue: 64,
        }
    }
}

impl HaacConfig {
    /// The window model implied by the SWW size.
    pub fn window(&self) -> WindowModel {
        WindowModel::from_bytes(self.sww_bytes)
    }

    /// Total SWW banks.
    pub fn num_banks(&self) -> usize {
        (self.num_ges * self.banks_per_ge).max(1)
    }

    /// DRAM bytes deliverable per GE cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram.bytes_per_second() / (self.ge_clock_ghz * 1e9)
    }
}

/// Off-chip traffic in bytes, by stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    /// Instruction stream.
    pub instr_bytes: u64,
    /// Garbled-table stream.
    pub table_bytes: u64,
    /// OoRW stream (16 B wire + 4 B address each).
    pub oorw_bytes: u64,
    /// Live-wire write-backs.
    pub live_bytes: u64,
    /// One-time preload of in-window inputs.
    pub preload_bytes: u64,
}

impl Traffic {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.instr_bytes + self.table_bytes + self.oorw_bytes + self.live_bytes + self.preload_bytes
    }

    /// Wire-only bytes (the Fig. 7 "wire traffic" series: OoRW reads,
    /// live write-backs, and the input preload).
    pub fn wire_bytes(&self) -> u64 {
        self.oorw_bytes + self.live_bytes + self.preload_bytes
    }
}

/// Issue-stall cycles by cause (summed across GEs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stalls {
    /// Waiting on an operand still in a pipeline.
    pub operand: u64,
    /// SWW bank conflict.
    pub bank: u64,
    /// Instruction queue empty.
    pub instr_queue: u64,
    /// Table queue empty at an AND.
    pub table_queue: u64,
    /// OoRW queue empty at a sentinel operand.
    pub oorw_queue: u64,
}

/// Result of a timing simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total cycles to drain the program (including the write tail).
    pub cycles: u64,
    /// Wall-clock seconds at the configured GE clock.
    pub seconds: f64,
    /// Instructions executed.
    pub instructions: u64,
    /// AND instructions.
    pub and_count: u64,
    /// XOR + INV instructions.
    pub free_count: u64,
    /// Off-chip traffic.
    pub traffic: Traffic,
    /// Stall accounting.
    pub stalls: Stalls,
    /// SWW read accesses (for the energy model).
    pub sww_reads: u64,
    /// SWW write accesses.
    pub sww_writes: u64,
    /// Instructions issued per GE.
    pub per_ge_instructions: Vec<u64>,
    /// The configuration simulated.
    pub config: HaacConfig,
}

impl SimReport {
    /// Wire-traffic-only time (Fig. 7's blue series): wire bytes at peak
    /// bandwidth, ignoring compute.
    pub fn wire_traffic_seconds(&self) -> f64 {
        self.traffic.wire_bytes() as f64 / self.config.dram.bytes_per_second()
    }
}

/// Per-GE instruction streams recorded by the mapping pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeAssignment {
    /// Instruction indices per GE, in that GE's execution order
    /// (monotonically increasing — GEs preserve program order locally).
    pub streams: Vec<Vec<u32>>,
}

/// Computes static traffic for a lowered program under a configuration.
pub fn static_traffic(lowered: &LoweredProgram, config: &HaacConfig) -> Traffic {
    let program = &lowered.program;
    let window = config.window();
    let instr_bytes = Program::instruction_bytes(window.sww_wires()) as u64;
    let live = program.instructions.iter().filter(|i| i.live).count() as u64;
    let and_count = program.num_and() as u64;
    let first_frontier = program.num_inputs + 1;
    let base0 = window.base_for_frontier(first_frontier);
    let preloaded = (program.num_inputs).saturating_sub(base0.saturating_sub(1)) as u64;
    Traffic {
        instr_bytes: program.instructions.len() as u64 * instr_bytes,
        table_bytes: and_count * 32,
        oorw_bytes: lowered.num_oor as u64 * (16 + 4),
        live_bytes: live * 16,
        preload_bytes: preloaded * 16,
    }
}

// ---------------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------------

const READ_LATENCY: u64 = 3; // SWW read: address → bank → data (§3.2)
const WRITEBACK_LATENCY: u64 = 2;
const BANK_RING: usize = 64; // covers read + compute + writeback horizon
const BANK_PORTS_PER_CYCLE: u16 = 2; // SWW at 2 GHz vs 1 GHz GEs

/// Rolling per-cycle, per-bank access accounting.
struct BankTracker {
    stamps: Vec<u64>,
    counts: Vec<u16>,
    num_banks: usize,
}

impl BankTracker {
    fn new(num_banks: usize) -> BankTracker {
        BankTracker {
            stamps: vec![u64::MAX; BANK_RING * num_banks],
            counts: vec![0; BANK_RING * num_banks],
            num_banks,
        }
    }

    fn slot(&self, cycle: u64, bank: usize) -> usize {
        (cycle as usize % BANK_RING) * self.num_banks + bank
    }

    fn load(&mut self, cycle: u64, bank: usize) -> u16 {
        let s = self.slot(cycle, bank);
        if self.stamps[s] != cycle {
            self.stamps[s] = cycle;
            self.counts[s] = 0;
        }
        self.counts[s]
    }

    fn reserve(&mut self, cycle: u64, bank: usize) {
        let s = self.slot(cycle, bank);
        if self.stamps[s] != cycle {
            self.stamps[s] = cycle;
            self.counts[s] = 0;
        }
        self.counts[s] += 1;
    }
}

struct GeState {
    /// Position in the assigned stream (next instruction to issue).
    pos: usize,
    /// Items currently in the instruction queue (replay mode).
    instr_q: usize,
    /// Tables currently in the table queue.
    table_q: usize,
    /// Wires currently in the OoRW queue.
    oorw_q: usize,
    /// How many stream instructions have been fetched into the queue.
    fetched: usize,
    /// Tables fetched so far (stream position).
    tables_fetched: usize,
    /// OoR wires fetched so far.
    oorw_fetched: usize,
    issued: u64,
}

/// Runs the greedy mapping pass: instructions are assigned to the first
/// non-stalled GE each cycle with idealized (infinite) memory streams.
pub fn map_to_ges(lowered: &LoweredProgram, config: &HaacConfig) -> GeAssignment {
    let engine = Engine::new(lowered, config, None);
    engine.run().1
}

/// Replays recorded streams against the full memory system.
pub fn simulate(
    lowered: &LoweredProgram,
    config: &HaacConfig,
    assignment: &GeAssignment,
) -> SimReport {
    let engine = Engine::new(lowered, config, Some(assignment));
    engine.run().0
}

/// Convenience: mapping pass + replay.
pub fn map_and_simulate(lowered: &LoweredProgram, config: &HaacConfig) -> SimReport {
    let assignment = map_to_ges(lowered, config);
    simulate(lowered, config, &assignment)
}

struct Engine<'a> {
    lowered: &'a LoweredProgram,
    config: &'a HaacConfig,
    assignment: Option<&'a GeAssignment>,
}

impl<'a> Engine<'a> {
    fn new(
        lowered: &'a LoweredProgram,
        config: &'a HaacConfig,
        assignment: Option<&'a GeAssignment>,
    ) -> Engine<'a> {
        Engine { lowered, config, assignment }
    }

    fn run(&self) -> (SimReport, GeAssignment) {
        let program = &self.lowered.program;
        let n = program.instructions.len();
        let num_ges = self.config.num_ges.max(1);
        let window = self.config.window();
        let num_banks = self.config.num_banks();
        let first_out = program.first_output_addr();
        let mapping_mode = self.assignment.is_none();

        // ready[i]: cycle at which instruction i's output is forwardable.
        let mut ready = vec![u64::MAX; n];
        let mut banks = BankTracker::new(num_banks);
        let mut ges: Vec<GeState> = (0..num_ges)
            .map(|_| GeState {
                pos: 0,
                instr_q: 0,
                table_q: 0,
                oorw_q: 0,
                fetched: 0,
                tables_fetched: 0,
                oorw_fetched: 0,
                issued: 0,
            })
            .collect();
        // Mapping mode: one shared cursor; streams recorded as we go.
        let mut next_instr = 0usize;
        let mut streams: Vec<Vec<u32>> = vec![Vec::new(); num_ges];
        // Replay: per-GE derived streams.
        let empty: Vec<Vec<u32>> = Vec::new();
        let replay_streams: &Vec<Vec<u32>> = match self.assignment {
            Some(a) => &a.streams,
            None => &empty,
        };
        // Per-GE table/OoR demand in stream order (replay only).
        let (ge_and_total, ge_oor_total): (Vec<usize>, Vec<usize>) = if mapping_mode {
            (vec![0; num_ges], vec![0; num_ges])
        } else {
            let mut ands = vec![0usize; num_ges];
            let mut oors = vec![0usize; num_ges];
            for (g, stream) in replay_streams.iter().enumerate() {
                for &i in stream {
                    let instr = &program.instructions[i as usize];
                    if instr.op == Opcode::And {
                        ands[g] += 1;
                    }
                    oors[g] += self.lowered.oor_addrs[i as usize].len();
                }
            }
            (ands, oors)
        };

        let mut stalls = Stalls::default();
        let mut sww_reads = 0u64;
        let mut sww_writes = 0u64;
        let mut issued_total = 0usize;
        let mut last_completion = 0u64;
        let mut cycle = 0u64;

        // DRAM byte budget accumulator (replay only).
        let bytes_per_cycle = self.config.dram_bytes_per_cycle();
        let instr_bytes = Program::instruction_bytes(window.sww_wires()) as u64;
        let mut dram_credit = bytes_per_cycle;
        // Round-robin arbitration pointer.
        let mut rr_start = 0usize;
        // Outstanding live-wire write-backs in bytes.
        let mut write_backlog = 0u64;
        // Initial preload of in-window inputs competes for bandwidth too.
        let traffic = static_traffic(self.lowered, self.config);
        let mut preload_remaining = if mapping_mode { 0 } else { traffic.preload_bytes };

        let halfgate = self.config.role.halfgate_latency();

        while issued_total < n {
            // --- DRAM service (replay only) -----------------------------
            if !mapping_mode {
                if dram_credit.is_infinite() {
                    dram_credit = f64::MAX;
                }
                // Preload drains first (program start).
                if preload_remaining > 0 {
                    let take = (dram_credit.min(preload_remaining as f64)) as u64;
                    preload_remaining -= take;
                    dram_credit -= take as f64;
                }
                // Round-robin over 3 stream kinds × GEs + the write stream.
                let services = num_ges * 3 + 1;
                let mut progressed = true;
                while progressed && dram_credit >= 4.0 {
                    progressed = false;
                    for k in 0..services {
                        let s = (rr_start + k) % services;
                        if s == services - 1 {
                            if write_backlog > 0 && dram_credit >= 16.0 {
                                write_backlog -= 16;
                                dram_credit -= 16.0;
                                progressed = true;
                            }
                            continue;
                        }
                        let g = s / 3;
                        let ge = &mut ges[g];
                        match s % 3 {
                            0 => {
                                if ge.fetched < replay_streams[g].len()
                                    && ge.instr_q < self.config.instr_queue
                                    && dram_credit >= instr_bytes as f64
                                {
                                    ge.fetched += 1;
                                    ge.instr_q += 1;
                                    dram_credit -= instr_bytes as f64;
                                    progressed = true;
                                }
                            }
                            1 => {
                                if ge.tables_fetched < ge_and_total[g]
                                    && ge.table_q < self.config.table_queue
                                    && dram_credit >= 32.0
                                {
                                    ge.tables_fetched += 1;
                                    ge.table_q += 1;
                                    dram_credit -= 32.0;
                                    progressed = true;
                                }
                            }
                            _ => {
                                if ge.oorw_fetched < ge_oor_total[g]
                                    && ge.oorw_q < self.config.oorw_queue
                                    && dram_credit >= 20.0
                                {
                                    ge.oorw_fetched += 1;
                                    ge.oorw_q += 1;
                                    dram_credit -= 20.0;
                                    progressed = true;
                                }
                            }
                        }
                    }
                    rr_start = (rr_start + 1) % services;
                }
                // Cap banked credit so idle periods don't bank unbounded
                // bandwidth (streams are continuous, queues bound it anyway).
                dram_credit = dram_credit.min(bytes_per_cycle * 64.0);
            }

            // --- Issue attempt per GE -----------------------------------
            let mut any_issued = false;
            for g in 0..num_ges {
                // Determine this GE's head instruction.
                let head: Option<u32> = if mapping_mode {
                    if ges[g].pos < streams[g].len() {
                        Some(streams[g][ges[g].pos])
                    } else if next_instr < n {
                        // Assign a fresh instruction to the idle GE.
                        let i = next_instr as u32;
                        next_instr += 1;
                        streams[g].push(i);
                        Some(i)
                    } else {
                        None
                    }
                } else if ges[g].pos < replay_streams[g].len() {
                    Some(replay_streams[g][ges[g].pos])
                } else {
                    None
                };
                let Some(i) = head else { continue };
                let i = i as usize;
                let instr = &program.instructions[i];

                // Frontend: instruction must be in the queue (replay).
                if !mapping_mode && ges[g].instr_q == 0 {
                    stalls.instr_queue += 1;
                    continue;
                }

                // Queue heads for tables and OoR wires.
                let oor_needed = self.lowered.oor_addrs[i].len();
                if !mapping_mode && oor_needed > 0 && ges[g].oorw_q < oor_needed {
                    stalls.oorw_queue += 1;
                    continue;
                }
                if !mapping_mode && instr.op == Opcode::And && ges[g].table_q == 0 {
                    stalls.table_queue += 1;
                    continue;
                }

                // Operand readiness (forwarding network: ready when the
                // producer's compute completes).
                let mut operands_ready = true;
                for operand in [instr.a, instr.b].iter().take(instr.num_operands()) {
                    if *operand == OOR_SENTINEL || *operand < first_out {
                        continue; // OoR (queued) or primary input
                    }
                    let producer = (*operand - first_out) as usize;
                    if ready[producer] > cycle {
                        operands_ready = false;
                        break;
                    }
                }
                if !operands_ready {
                    stalls.operand += 1;
                    continue;
                }

                // SWW bank ports for the in-window reads.
                let mut read_banks: [usize; 2] = [usize::MAX; 2];
                let mut n_reads = 0;
                for operand in [instr.a, instr.b].iter().take(instr.num_operands()) {
                    if *operand != OOR_SENTINEL {
                        read_banks[n_reads] = (*operand as usize) % num_banks;
                        n_reads += 1;
                    }
                }
                let mut bank_ok = true;
                for &bank in read_banks.iter().take(n_reads) {
                    if banks.load(cycle, bank) >= BANK_PORTS_PER_CYCLE {
                        bank_ok = false;
                        break;
                    }
                }
                if !bank_ok {
                    stalls.bank += 1;
                    continue;
                }
                for &bank in read_banks.iter().take(n_reads) {
                    banks.reserve(cycle, bank);
                    sww_reads += 1;
                }

                // Issue!
                let compute = match instr.op {
                    Opcode::And => halfgate,
                    Opcode::Xor | Opcode::Inv => 1,
                    Opcode::Nop => 1,
                };
                let done = cycle + READ_LATENCY + compute;
                ready[i] = done;
                last_completion = last_completion.max(done + WRITEBACK_LATENCY);
                // Writeback bank reservation (best effort within the ring).
                let out_addr = program.output_addr(i);
                banks.reserve(done + WRITEBACK_LATENCY, (out_addr as usize) % num_banks);
                sww_writes += 1;

                ges[g].pos += 1;
                ges[g].issued += 1;
                issued_total += 1;
                any_issued = true;
                if !mapping_mode {
                    ges[g].instr_q -= 1;
                    if instr.op == Opcode::And {
                        ges[g].table_q -= 1;
                    }
                    ges[g].oorw_q -= oor_needed;
                    if instr.live {
                        write_backlog += 16;
                    }
                }
            }

            // --- Advance time -------------------------------------------
            let mut advance = 1u64;
            if !any_issued {
                // Nothing issued: if every GE with work is purely
                // operand-stalled, skip ahead to the earliest ready event
                // (deep-chain fast path). Queue-stalled GEs need per-cycle
                // DRAM service, so no skipping then.
                let mut next_event = u64::MAX;
                let mut skippable = true;
                for g in 0..num_ges {
                    let head = if mapping_mode {
                        streams[g].get(ges[g].pos).copied()
                    } else {
                        replay_streams[g].get(ges[g].pos).copied()
                    };
                    let Some(i) = head else { continue };
                    let i = i as usize;
                    if !mapping_mode {
                        let ge = &ges[g];
                        let instr = &program.instructions[i];
                        let oor_needed = self.lowered.oor_addrs[i].len();
                        if ge.instr_q == 0
                            || (instr.op == Opcode::And && ge.table_q == 0)
                            || (oor_needed > 0 && ge.oorw_q < oor_needed)
                        {
                            skippable = false;
                            break;
                        }
                    }
                    let instr = &program.instructions[i];
                    for operand in [instr.a, instr.b].iter().take(instr.num_operands()) {
                        if *operand == OOR_SENTINEL || *operand < first_out {
                            continue;
                        }
                        let producer = (*operand - first_out) as usize;
                        if ready[producer] > cycle && ready[producer] != u64::MAX {
                            next_event = next_event.min(ready[producer]);
                        }
                    }
                }
                if skippable && next_event != u64::MAX && next_event > cycle {
                    advance = next_event - cycle;
                }
            }
            cycle += advance;
            if !mapping_mode {
                // DRAM keeps streaming through skipped cycles; queues cap
                // how much banked bandwidth is usable.
                dram_credit += bytes_per_cycle * advance as f64;
            }
        }

        // Drain: last completions plus the write backlog.
        let mut end = last_completion.max(cycle);
        if !mapping_mode && bytes_per_cycle.is_finite() && bytes_per_cycle > 0.0 {
            let drain = (write_backlog as f64 / bytes_per_cycle).ceil() as u64;
            end += drain;
        }

        let and_count = program.num_and() as u64;
        let report = SimReport {
            cycles: end,
            seconds: end as f64 / (self.config.ge_clock_ghz * 1e9),
            instructions: n as u64,
            and_count,
            free_count: n as u64 - and_count,
            traffic,
            stalls,
            sww_reads,
            sww_writes,
            per_ge_instructions: ges.iter().map(|g| g.issued).collect(),
            config: *self.config,
        };
        let assignment = GeAssignment { streams };
        (report, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, ReorderKind};
    use haac_circuit::Builder;

    fn adder_tree_circuit(width: u32, lanes: usize) -> haac_circuit::Circuit {
        let mut b = Builder::new();
        let x = b.input_garbler(width * lanes as u32);
        let y = b.input_evaluator(width * lanes as u32);
        let mut outs = Vec::new();
        for k in 0..lanes {
            let lo = k * width as usize;
            let hi = lo + width as usize;
            let (s, _) = b.add_words(&x[lo..hi], &y[lo..hi]);
            outs.extend(s);
        }
        b.finish(outs).unwrap()
    }

    fn small_config() -> HaacConfig {
        HaacConfig { num_ges: 4, sww_bytes: 4096, ..HaacConfig::default() }
    }

    #[test]
    fn mapping_covers_all_instructions_once() {
        let c = adder_tree_circuit(8, 4);
        let config = small_config();
        let (lowered, _) = compile(&c, ReorderKind::Full, config.window());
        let assignment = map_to_ges(&lowered, &config);
        let mut seen: Vec<u32> = assignment.streams.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..c.num_gates() as u32).collect();
        assert_eq!(seen, expect);
        // Streams are per-GE monotonic (program order preserved locally).
        for s in &assignment.streams {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn replay_matches_instruction_count() {
        let c = adder_tree_circuit(8, 4);
        let config = small_config();
        let (lowered, _) = compile(&c, ReorderKind::Full, config.window());
        let report = map_and_simulate(&lowered, &config);
        assert_eq!(report.instructions as usize, c.num_gates());
        assert_eq!(report.per_ge_instructions.iter().sum::<u64>() as usize, c.num_gates());
        assert!(report.cycles > 0);
    }

    #[test]
    fn more_ges_do_not_slow_parallel_work() {
        let c = adder_tree_circuit(8, 16);
        let mk =
            |ges: usize| HaacConfig { num_ges: ges, dram: DramKind::Infinite, ..small_config() };
        let window = mk(1).window();
        let (lowered, _) = compile(&c, ReorderKind::Full, window);
        let t1 = map_and_simulate(&lowered, &mk(1)).cycles;
        let t8 = map_and_simulate(&lowered, &mk(8)).cycles;
        assert!(t8 < t1, "8 GEs ({t8}) should beat 1 GE ({t1}) on parallel work");
    }

    #[test]
    fn infinite_bandwidth_is_no_slower() {
        let c = adder_tree_circuit(8, 8);
        let config = small_config();
        let (lowered, _) = compile(&c, ReorderKind::Full, config.window());
        let ddr = map_and_simulate(&lowered, &config).cycles;
        let inf =
            map_and_simulate(&lowered, &HaacConfig { dram: DramKind::Infinite, ..config }).cycles;
        assert!(inf <= ddr, "infinite bandwidth ({inf}) must not lose to DDR4 ({ddr})");
    }

    #[test]
    fn hbm_beats_ddr_when_memory_bound() {
        // An AND-heavy shallow circuit (wide AND layer) is table-bound.
        let mut b = Builder::new();
        let x = b.input_garbler(2048);
        let y = b.input_evaluator(2048);
        let outs = b.and_words(&x, &y);
        let c = b.finish(outs).unwrap();
        let config = HaacConfig { num_ges: 16, ..small_config() };
        let (lowered, _) = compile(&c, ReorderKind::Full, config.window());
        let ddr = map_and_simulate(&lowered, &config).cycles;
        let hbm = map_and_simulate(&lowered, &HaacConfig { dram: DramKind::Hbm2, ..config }).cycles;
        assert!(hbm < ddr, "HBM2 ({hbm}) should beat DDR4 ({ddr}) on a table-bound workload");
    }

    #[test]
    fn traffic_accounting_is_exact() {
        let c = adder_tree_circuit(8, 2);
        let config = small_config();
        let (lowered, stats) = compile(&c, ReorderKind::Baseline, config.window());
        let traffic = static_traffic(&lowered, &config);
        assert_eq!(traffic.table_bytes, stats.and_count as u64 * 32);
        assert_eq!(traffic.oorw_bytes, stats.oor_count as u64 * 20);
        assert_eq!(traffic.live_bytes, stats.live_count as u64 * 16);
        let per_instr = Program::instruction_bytes(config.window().sww_wires()) as u64;
        assert_eq!(traffic.instr_bytes, stats.instructions as u64 * per_instr);
    }

    #[test]
    fn deep_chain_costs_pipeline_latency() {
        // A pure AND chain: n serial half-gates ≈ n × (latency) cycles.
        let mut b = Builder::new();
        let x = b.input_garbler(2);
        let mut acc = x[0];
        for _ in 0..64 {
            acc = b.and(acc, x[1]);
        }
        // Prevent folding tricks: acc is a fresh wire each step already.
        let c = b.finish(vec![acc]).unwrap();
        let config = HaacConfig { dram: DramKind::Infinite, ..small_config() };
        let (lowered, _) = compile(&c, ReorderKind::Baseline, config.window());
        let report = map_and_simulate(&lowered, &config);
        let min_expected = 64 * config.role.halfgate_latency();
        assert!(
            report.cycles >= min_expected,
            "chain of 64 ANDs must cost ≥ {min_expected} cycles, got {}",
            report.cycles
        );
    }
}
