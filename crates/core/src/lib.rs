//! # haac-core — the HAAC accelerator: ISA, compiler, simulator, model
//!
//! The primary contribution of *HAAC: A Hardware-Software Co-Design to
//! Accelerate Garbled Circuits* (Mo, Gopinath & Reagen, ISCA 2023),
//! rebuilt as a library:
//!
//! - [`isa`]: the straight-line HAAC instruction set — 2-bit opcode, two
//!   wire addresses (with the OoRW sentinel), a live bit, and implicit
//!   in-order output addresses.
//! - [`compiler`]: assembly + the paper's three optimizations — full and
//!   segment **reordering**, **renaming** (inherent to assembly here),
//!   and **eliminating spent wires** — plus out-of-range marking, which
//!   turns all off-chip traffic into compiler-known streams.
//! - [`window`]: the sliding-wire-window address discipline shared by
//!   every layer.
//! - [`lower`]: [`lower_for_streaming`] — the reorder → rename →
//!   window-size pipeline producing the cached [`StreamingPlan`] that
//!   drives the gc layer's slot-slab streaming executors.
//! - [`exec`]: functional execution of compiled programs through the
//!   modeled memory system, validating compiler correctness against
//!   plaintext/GC semantics.
//! - [`sim`]: the cycle-level simulator (gate-engine pipelines, banked
//!   SWW, queues, streaming DRAM) in the paper's two-pass
//!   mapping-then-replay methodology.
//! - [`model`]: Table 4's area/power arithmetic and Fig. 9's energy
//!   accounting.
//!
//! # Examples
//!
//! Compile and simulate a circuit on the paper's 16-GE / 2 MB / DDR4
//! configuration:
//!
//! ```
//! use haac_circuit::Builder;
//! use haac_core::{compiler, sim};
//!
//! let mut b = Builder::new();
//! let x = b.input_garbler(32);
//! let y = b.input_evaluator(32);
//! let p = b.mul_words_trunc(&x, &y);
//! let circuit = b.finish(p).unwrap();
//!
//! let config = sim::HaacConfig::default();
//! let (lowered, stats) = compiler::compile(
//!     &circuit,
//!     compiler::ReorderKind::Full,
//!     config.window(),
//! );
//! let report = sim::map_and_simulate(&lowered, &config);
//! assert!(report.cycles > 0);
//! assert_eq!(report.and_count as usize, stats.and_count);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compiler;
pub mod exec;
pub mod isa;
pub mod lower;
pub mod model;
pub mod sim;
pub mod window;

pub use compiler::{compile, ReorderKind};
pub use isa::{Instruction, Opcode, Program};
pub use lower::{
    lower_for_streaming, lower_with_reorder, lower_with_window, plan_from_program,
    plan_from_program_with_window, slot_stream, StreamingPlan,
};
pub use sim::{DramKind, HaacConfig, Role, SimReport};
pub use window::WindowModel;

/// Picks the better of segment/full reordering for a circuit by
/// simulated cycles — the paper's §6.2 deployment rule ("we can run both
/// and deploy the best performing optimization, as performance is
/// deterministic").
pub fn best_reorder(
    circuit: &haac_circuit::Circuit,
    config: &sim::HaacConfig,
) -> (ReorderKind, SimReport) {
    let window = config.window();
    let mut best: Option<(ReorderKind, SimReport)> = None;
    for kind in [ReorderKind::Segment, ReorderKind::Full] {
        let (lowered, _) = compiler::compile(circuit, kind, window);
        let report = sim::map_and_simulate(&lowered, config);
        let better = match &best {
            Some((_, b)) => report.cycles < b.cycles,
            None => true,
        };
        if better {
            best = Some((kind, report));
        }
    }
    best.expect("at least one strategy was simulated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use haac_circuit::Builder;

    #[test]
    fn best_reorder_returns_the_faster_strategy() {
        let mut b = Builder::new();
        let x = b.input_garbler(64);
        let y = b.input_evaluator(64);
        let p = b.mul_words_trunc(&x, &y);
        let c = b.finish(p).unwrap();
        let config = HaacConfig { num_ges: 4, sww_bytes: 8192, ..HaacConfig::default() };
        let (kind, report) = best_reorder(&c, &config);
        // Verify it is indeed no worse than the other option.
        let other = match kind {
            ReorderKind::Full => ReorderKind::Segment,
            _ => ReorderKind::Full,
        };
        let (lowered, _) = compiler::compile(&c, other, config.window());
        let other_report = sim::map_and_simulate(&lowered, &config);
        assert!(report.cycles <= other_report.cycles);
    }
}
