//! Functional execution of lowered HAAC programs (the correctness half
//! of the paper's §5 "Correctness" methodology).
//!
//! The executor garbles or evaluates a circuit *through* the compiled
//! instruction stream, obtaining every operand exclusively via the
//! memory structures the hardware would use:
//!
//! - in-window reads come from the physical SWW slot (`addr % n`), with
//!   a tag check that the slot still holds the expected wire;
//! - sentinel operands pop the compiler-generated OoRW stream and fetch
//!   from modeled DRAM, which only contains inputs and live-bit spills.
//!
//! Any compiler bug — wrong renaming, a wire marked spent while still
//! needed, a missed OoR access — surfaces as an [`ExecError`] or as a
//! decode mismatch against plaintext evaluation. This is the mechanism
//! behind the integration tests asserting that reordering/renaming/ESW
//! preserve GC semantics for every workload.

use std::collections::HashMap;
use std::fmt;

use haac_gc::{
    eval_and, eval_inv, eval_xor, garble_and, garble_inv, garble_xor, Block, Delta, GateHash,
    HashScheme,
};
use rand::Rng;

use crate::compiler::LoweredProgram;
use crate::isa::{Opcode, OOR_SENTINEL};
use crate::window::WindowModel;

/// Memory-discipline violations surfaced by the functional executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An in-window read found a different wire in the physical slot —
    /// the SWW contract was violated (renaming or OoR-marking bug).
    SlotTagMismatch {
        /// Instruction index performing the read.
        instruction: usize,
        /// Address the instruction expected.
        expected: u32,
        /// Address actually resident in the slot.
        found: u32,
    },
    /// An OoR read missed in DRAM — the wire was never spilled (ESW bug)
    /// or the OoR stream is inconsistent.
    MissingDramWire {
        /// Instruction index performing the read.
        instruction: usize,
        /// The wire address that should have been in DRAM.
        addr: u32,
    },
    /// The OoRW stream ran dry for an instruction with a sentinel
    /// operand.
    OorStreamUnderflow {
        /// Instruction index performing the read.
        instruction: usize,
    },
    /// The evaluator ran out of garbled tables.
    TableUnderflow {
        /// Instruction index needing a table.
        instruction: usize,
    },
    /// Input label count didn't match the program.
    InputCount {
        /// Labels provided.
        got: usize,
        /// Labels required (one per input).
        expected: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::SlotTagMismatch { instruction, expected, found } => write!(
                f,
                "instruction {instruction}: SWW slot holds wire {found}, expected {expected}"
            ),
            ExecError::MissingDramWire { instruction, addr } => {
                write!(f, "instruction {instruction}: wire {addr} absent from DRAM")
            }
            ExecError::OorStreamUnderflow { instruction } => {
                write!(f, "instruction {instruction}: OoRW stream underflow")
            }
            ExecError::TableUnderflow { instruction } => {
                write!(f, "instruction {instruction}: table queue underflow")
            }
            ExecError::InputCount { got, expected } => {
                write!(f, "got {got} input labels, program requires {expected}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Traffic counters accumulated during functional execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemReport {
    /// Reads served by the SWW.
    pub sww_reads: u64,
    /// Reads served by the OoRW queue (DRAM).
    pub oor_reads: u64,
    /// Live wires written back to DRAM.
    pub live_writes: u64,
}

/// The modeled on-chip/off-chip wire memory shared by both roles.
struct WireMemory {
    window: WindowModel,
    /// Physical SWW: (resident wire address, value) per slot.
    slots: Vec<(u32, Block)>,
    /// Modeled DRAM: inputs and spilled live wires.
    dram: HashMap<u32, Block>,
    report: MemReport,
}

impl WireMemory {
    fn new(window: WindowModel, inputs: &[Block]) -> WireMemory {
        // Input wire k lives at address k+1. All inputs start in DRAM;
        // those inside the initial window are also preloaded into the SWW.
        let mut slots = vec![(u32::MAX, Block::ZERO); window.sww_wires() as usize];
        let mut dram = HashMap::new();
        let num_inputs = inputs.len() as u32;
        let first_frontier = num_inputs + 1;
        let base0 = window.base_for_frontier(first_frontier);
        for (k, &label) in inputs.iter().enumerate() {
            let addr = k as u32 + 1;
            dram.insert(addr, label);
            if addr >= base0 {
                slots[window.slot(addr) as usize] = (addr, label);
            }
        }
        WireMemory { window, slots, dram, report: MemReport::default() }
    }

    fn read(
        &mut self,
        instruction: usize,
        addr: u32,
        oor_stream: &mut std::vec::IntoIter<u32>,
    ) -> Result<Block, ExecError> {
        if addr == OOR_SENTINEL {
            let real = oor_stream.next().ok_or(ExecError::OorStreamUnderflow { instruction })?;
            self.report.oor_reads += 1;
            return self
                .dram
                .get(&real)
                .copied()
                .ok_or(ExecError::MissingDramWire { instruction, addr: real });
        }
        let (tag, value) = self.slots[self.window.slot(addr) as usize];
        if tag != addr {
            return Err(ExecError::SlotTagMismatch { instruction, expected: addr, found: tag });
        }
        self.report.sww_reads += 1;
        Ok(value)
    }

    fn write(&mut self, addr: u32, value: Block, live: bool) {
        self.slots[self.window.slot(addr) as usize] = (addr, value);
        if live {
            self.dram.insert(addr, value);
            self.report.live_writes += 1;
        }
    }
}

/// The Garbler's artifacts from stream execution.
#[derive(Debug, Clone)]
pub struct StreamGarbling {
    /// The FreeXOR offset.
    pub delta: Delta,
    /// Zero labels for the program inputs (address order).
    pub input_zero_labels: Vec<Block>,
    /// Garbled tables in program order.
    pub tables: Vec<[Block; 2]>,
    /// Per-output decode bits.
    pub output_decode: Vec<bool>,
    /// Memory-discipline counters.
    pub report: MemReport,
}

/// Garbles a circuit by executing its lowered HAAC program.
///
/// Tweaks are instruction indices, so the evaluator must run the *same*
/// program (which is the protocol's reality: both parties compile
/// deterministically).
///
/// # Errors
///
/// Returns an [`ExecError`] if the compiled program violates the memory
/// discipline (a compiler bug this executor exists to catch).
pub fn garble_stream<R: Rng + ?Sized>(
    lowered: &LoweredProgram,
    window: WindowModel,
    rng: &mut R,
    scheme: HashScheme,
) -> Result<StreamGarbling, ExecError> {
    let program = &lowered.program;
    let hash = GateHash::new(scheme);
    let delta = Delta::random(rng);
    let input_zero_labels: Vec<Block> =
        (0..program.num_inputs).map(|_| Block::random(rng)).collect();

    let mut memory = WireMemory::new(window, &input_zero_labels);
    let mut tables = Vec::with_capacity(program.num_and());
    for (i, instr) in program.instructions.iter().enumerate() {
        let mut oor = lowered.oor_addrs[i].clone().into_iter();
        let out_addr = program.output_addr(i);
        let value = match instr.op {
            Opcode::Nop => continue,
            Opcode::Inv => {
                let a = memory.read(i, instr.a, &mut oor)?;
                garble_inv(delta, a)
            }
            Opcode::Xor => {
                let a = memory.read(i, instr.a, &mut oor)?;
                let b = memory.read(i, instr.b, &mut oor)?;
                garble_xor(a, b)
            }
            Opcode::And => {
                let a = memory.read(i, instr.a, &mut oor)?;
                let b = memory.read(i, instr.b, &mut oor)?;
                let (out, table) = garble_and(&hash, delta, i as u64, a, b);
                tables.push(table);
                out
            }
        };
        memory.write(out_addr, value, instr.live);
    }

    // Outputs are always live, hence present in DRAM.
    let mut output_decode = Vec::with_capacity(program.output_addrs.len());
    for &addr in &program.output_addrs {
        let label = memory
            .dram
            .get(&addr)
            .copied()
            .ok_or(ExecError::MissingDramWire { instruction: usize::MAX, addr })?;
        output_decode.push(label.lsb());
    }
    Ok(StreamGarbling { delta, input_zero_labels, tables, output_decode, report: memory.report })
}

/// Evaluates a garbled program by stream execution; returns the active
/// output labels and the memory report.
///
/// # Errors
///
/// Returns an [`ExecError`] on memory-discipline violations, input/table
/// count mismatches, or missing output wires.
pub fn evaluate_stream(
    lowered: &LoweredProgram,
    window: WindowModel,
    tables: &[[Block; 2]],
    input_labels: &[Block],
    scheme: HashScheme,
) -> Result<(Vec<Block>, MemReport), ExecError> {
    let program = &lowered.program;
    if input_labels.len() != program.num_inputs as usize {
        return Err(ExecError::InputCount {
            got: input_labels.len(),
            expected: program.num_inputs as usize,
        });
    }
    let hash = GateHash::new(scheme);
    let mut memory = WireMemory::new(window, input_labels);
    let mut next_table = 0usize;
    for (i, instr) in program.instructions.iter().enumerate() {
        let mut oor = lowered.oor_addrs[i].clone().into_iter();
        let out_addr = program.output_addr(i);
        let value = match instr.op {
            Opcode::Nop => continue,
            Opcode::Inv => {
                let a = memory.read(i, instr.a, &mut oor)?;
                eval_inv(a)
            }
            Opcode::Xor => {
                let a = memory.read(i, instr.a, &mut oor)?;
                let b = memory.read(i, instr.b, &mut oor)?;
                eval_xor(a, b)
            }
            Opcode::And => {
                let a = memory.read(i, instr.a, &mut oor)?;
                let b = memory.read(i, instr.b, &mut oor)?;
                let table =
                    tables.get(next_table).ok_or(ExecError::TableUnderflow { instruction: i })?;
                next_table += 1;
                eval_and(&hash, i as u64, a, b, table)
            }
        };
        memory.write(out_addr, value, instr.live);
    }
    let mut outputs = Vec::with_capacity(program.output_addrs.len());
    for &addr in &program.output_addrs {
        let label = memory
            .dram
            .get(&addr)
            .copied()
            .ok_or(ExecError::MissingDramWire { instruction: usize::MAX, addr })?;
        outputs.push(label);
    }
    Ok((outputs, memory.report))
}

/// Convenience: compile-and-run a full garble → evaluate → decode round
/// trip through HAAC streams, returning the decoded outputs.
///
/// # Errors
///
/// Propagates any [`ExecError`] from either role.
pub fn run_gc_through_streams<R: Rng + ?Sized>(
    lowered: &LoweredProgram,
    window: WindowModel,
    garbler_bits: &[bool],
    evaluator_bits: &[bool],
    rng: &mut R,
    scheme: HashScheme,
) -> Result<Vec<bool>, ExecError> {
    let garbling = garble_stream(lowered, window, rng, scheme)?;
    let delta = garbling.delta.block();
    let bits: Vec<bool> = garbler_bits.iter().chain(evaluator_bits).copied().collect();
    let active: Vec<Block> = garbling
        .input_zero_labels
        .iter()
        .zip(&bits)
        .map(|(&zero, &bit)| zero ^ delta.select(bit))
        .collect();
    let (out_labels, _) = evaluate_stream(lowered, window, &garbling.tables, &active, scheme)?;
    Ok(out_labels.iter().zip(&garbling.output_decode).map(|(label, &d)| label.lsb() ^ d).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, ReorderKind};
    use haac_circuit::Builder;
    use rand::{rngs::StdRng, SeedableRng};

    fn mixed_circuit() -> haac_circuit::Circuit {
        let mut b = Builder::new();
        let x = b.input_garbler(8);
        let y = b.input_evaluator(8);
        let (s, _) = b.add_words(&x, &y);
        let p = b.mul_words_trunc(&x, &y);
        let lt = b.lt_u(&x, &y);
        let mut out = s;
        out.extend(p);
        out.push(lt);
        b.finish(out).unwrap()
    }

    #[test]
    fn streams_match_plaintext_across_windows_and_orders() {
        let c = mixed_circuit();
        let g_bits = haac_circuit::to_bits(173, 8);
        let e_bits = haac_circuit::to_bits(99, 8);
        let expect = c.eval(&g_bits, &e_bits).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for sww in [4u32, 8, 16, 64, 4096] {
            let window = WindowModel::new(sww);
            for kind in [ReorderKind::Baseline, ReorderKind::Full, ReorderKind::Segment] {
                let (lowered, _) = compile(&c, kind, window);
                let got = run_gc_through_streams(
                    &lowered,
                    window,
                    &g_bits,
                    &e_bits,
                    &mut rng,
                    HashScheme::Rekeyed,
                )
                .unwrap_or_else(|e| panic!("sww={sww} {kind:?}: {e}"));
                assert_eq!(got, expect, "sww={sww} {kind:?}");
            }
        }
    }

    #[test]
    fn tiny_window_produces_oor_traffic() {
        let c = mixed_circuit();
        let window = WindowModel::new(4);
        let (lowered, stats) = compile(&c, ReorderKind::Full, window);
        assert!(stats.oor_count > 0);
        let mut rng = StdRng::seed_from_u64(3);
        let g = garble_stream(&lowered, window, &mut rng, HashScheme::Rekeyed).unwrap();
        assert_eq!(g.report.oor_reads, stats.oor_count as u64);
        assert_eq!(g.report.live_writes, stats.live_count as u64);
    }

    #[test]
    fn corrupting_live_bits_is_detected() {
        // Clearing a live bit that ESW kept must surface as a missing
        // DRAM wire when the consumer reads it OoR.
        let c = mixed_circuit();
        let window = WindowModel::new(4);
        let (mut lowered, _) = compile(&c, ReorderKind::Baseline, window);
        let victim = lowered
            .program
            .instructions
            .iter()
            .position(|i| i.live)
            .expect("some wire is live under a tiny window");
        lowered.program.instructions[victim].live = false;
        let mut rng = StdRng::seed_from_u64(5);
        let result = run_gc_through_streams(
            &lowered,
            window,
            &haac_circuit::to_bits(1, 8),
            &haac_circuit::to_bits(2, 8),
            &mut rng,
            HashScheme::Rekeyed,
        );
        assert!(result.is_err(), "ESW corruption must be caught");
    }

    #[test]
    fn wrong_input_count_is_rejected() {
        let c = mixed_circuit();
        let window = WindowModel::new(64);
        let (lowered, _) = compile(&c, ReorderKind::Baseline, window);
        let result = evaluate_stream(&lowered, window, &[], &[Block::ZERO; 3], HashScheme::Rekeyed);
        assert!(matches!(result, Err(ExecError::InputCount { .. })));
    }
}
