//! The HAAC optimizing compiler (paper §4).
//!
//! The compiler turns a Boolean netlist into a renamed, straight-line
//! HAAC [`Program`] and then optimizes it:
//!
//! 1. **Assemble** (§4.1): gates → instructions. Renaming (§4.2.2) is
//!    inherent to assembly — output wire addresses always follow program
//!    order, which is what makes the SWW workable and output addresses
//!    implicit.
//! 2. **Reorder** (§4.2.1): *full* (breadth-first over the leveled
//!    dependence graph, maximizing ILP) or *segment* (level-order within
//!    half-SWW-sized windows, balancing ILP against wire locality).
//!    After any reorder, renaming is re-applied.
//! 3. **Eliminate spent wires** (§4.2.3): clear the live bit of every
//!    output that is never read beyond its SWW residency, saving
//!    off-chip write bandwidth.
//! 4. **Mark out-of-range reads**: operands that fall outside the SWW
//!    window at their consumer are rewritten to the OoRW-queue sentinel,
//!    and their addresses recorded — the compiler-pushed stream that
//!    fully decouples HAAC's off-chip traffic.

use haac_circuit::{Circuit, GateOp};

use crate::isa::{Instruction, Opcode, Program, OOR_SENTINEL};
use crate::window::WindowModel;

/// Instruction-scheduling strategy (paper Fig. 5 / §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReorderKind {
    /// Keep the netlist's original (depth-first-ish) order.
    #[default]
    Baseline,
    /// Breadth-first level order over the whole program: maximum ILP,
    /// potentially poor wire locality.
    Full,
    /// Level order within contiguous segments of half the SWW capacity:
    /// the compromise that preserves locality (§6.2).
    Segment,
}

impl ReorderKind {
    /// Short label used in reports ("Baseline", "Full", "Seg").
    pub fn label(self) -> &'static str {
        match self {
            ReorderKind::Baseline => "Baseline",
            ReorderKind::Full => "Full",
            ReorderKind::Segment => "Seg",
        }
    }
}

/// Assembles a circuit into a baseline-order HAAC program.
///
/// INV gates map to the INV opcode (executed by the FreeXOR unit — a
/// free relabeling); the returned program is renamed by construction.
pub fn assemble(circuit: &Circuit) -> Program {
    let order: Vec<u32> = (0..circuit.num_gates() as u32).collect();
    program_from_order(circuit, &order)
}

/// Builds a renamed program realizing the given gate order.
///
/// `order` must be a topological permutation of the circuit's gate
/// indices (every gate's inputs produced earlier in `order`).
///
/// # Panics
///
/// Panics (in debug builds) if `order` is not a permutation; invalid
/// topological orders surface as validation failures downstream.
pub fn program_from_order(circuit: &Circuit, order: &[u32]) -> Program {
    debug_assert_eq!(order.len(), circuit.num_gates());
    let num_inputs = circuit.num_inputs();
    // wire_to_addr: circuit wire id → program address (renaming).
    let mut wire_to_addr = vec![0u32; circuit.num_wires() as usize];
    for w in 0..num_inputs {
        wire_to_addr[w as usize] = w + 1;
    }
    let first_out = num_inputs + 1;
    let gates = circuit.gates();
    let mut instructions = Vec::with_capacity(order.len());
    for (i, &g) in order.iter().enumerate() {
        let gate = &gates[g as usize];
        wire_to_addr[gate.out as usize] = first_out + i as u32;
        let a = wire_to_addr[gate.a as usize];
        let (op, b) = match gate.op {
            GateOp::And => (Opcode::And, wire_to_addr[gate.b as usize]),
            GateOp::Xor => (Opcode::Xor, wire_to_addr[gate.b as usize]),
            GateOp::Inv => (Opcode::Inv, a),
        };
        instructions.push(Instruction::new(op, a, b));
    }
    let output_addrs = circuit.outputs().iter().map(|&w| wire_to_addr[w as usize]).collect();
    Program { instructions, num_inputs, output_addrs, source_gate: order.to_vec() }
}

/// Full reordering: breadth-first traversal of the leveled dependence
/// graph (§4.2.1), followed by renaming.
pub fn full_reorder(circuit: &Circuit) -> Program {
    let levels = circuit.wire_levels();
    let order = level_sorted_order(circuit, &levels, 0, circuit.num_gates());
    program_from_order(circuit, &order)
}

/// Segment reordering: level-order within contiguous windows of
/// `segment_size` instructions (§4.2.1 recommends half the SWW size),
/// followed by renaming.
///
/// # Panics
///
/// Panics if `segment_size` is zero.
pub fn segment_reorder(circuit: &Circuit, segment_size: usize) -> Program {
    assert!(segment_size > 0, "segment size must be positive");
    let levels = circuit.wire_levels();
    let mut order = Vec::with_capacity(circuit.num_gates());
    let mut start = 0usize;
    while start < circuit.num_gates() {
        let end = (start + segment_size).min(circuit.num_gates());
        order.extend(level_sorted_order(circuit, &levels, start, end));
        start = end;
    }
    program_from_order(circuit, &order)
}

/// Builds a reordered program for the given strategy and SWW size.
pub fn reorder(circuit: &Circuit, kind: ReorderKind, window: WindowModel) -> Program {
    match kind {
        ReorderKind::Baseline => assemble(circuit),
        ReorderKind::Full => full_reorder(circuit),
        ReorderKind::Segment => segment_reorder(circuit, window.half() as usize),
    }
}

/// Stable counting sort of gates `[start, end)` by dependence level.
fn level_sorted_order(circuit: &Circuit, levels: &[u32], start: usize, end: usize) -> Vec<u32> {
    let gates = circuit.gates();
    let max_level = (start..end).map(|g| levels[gates[g].out as usize]).max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_level + 1];
    for g in start..end {
        buckets[levels[gates[g].out as usize] as usize].push(g as u32);
    }
    buckets.into_iter().flatten().collect()
}

/// Eliminating spent wires (§4.2.3): clears the live bit of every
/// instruction whose output is provably never read from beyond its SWW
/// residency. Circuit outputs always stay live (they must reach DRAM).
pub fn eliminate_spent_wires(program: &mut Program, window: WindowModel) {
    let first_out = program.first_output_addr();
    let n = program.instructions.len();
    // For each produced address, the largest window base among its
    // consumers; a wire is live iff some consumer's base exceeds it.
    let mut live = vec![false; n];
    for (j, instr) in program.instructions.iter().enumerate() {
        let frontier = program.output_addr(j);
        let base = window.base_for_frontier(frontier);
        for operand in [instr.a, instr.b].iter().take(instr.num_operands()) {
            if *operand >= first_out && *operand < base {
                live[(*operand - first_out) as usize] = true;
            }
        }
    }
    for &out in &program.output_addrs {
        if out >= first_out {
            live[(out - first_out) as usize] = true;
        }
    }
    for (instr, &is_live) in program.instructions.iter_mut().zip(&live) {
        instr.live = is_live;
    }
}

/// A program lowered against a concrete SWW: OoR operands rewritten to
/// the sentinel, with the OoR address stream recorded (in program order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredProgram {
    /// The program with sentinel operands.
    pub program: Program,
    /// For each instruction, the original addresses of its OoR operands
    /// in operand order (`a` first) — the stream pushed on-chip by the
    /// memory controller.
    pub oor_addrs: Vec<Vec<u32>>,
    /// Total OoR reads.
    pub num_oor: usize,
}

/// Marks out-of-range reads (§3.1.4): every operand outside the SWW
/// window at its consumer becomes an OoRW-queue read.
///
/// Call after [`eliminate_spent_wires`] — OoR reads of spent wires would
/// find nothing in DRAM. (The combination is validated by the functional
/// executor.)
pub fn mark_out_of_range(program: &Program, window: WindowModel) -> LoweredProgram {
    let mut lowered = program.clone();
    let mut oor_addrs = vec![Vec::new(); program.instructions.len()];
    let mut num_oor = 0usize;
    for (j, instr) in lowered.instructions.iter_mut().enumerate() {
        let frontier = program.output_addr(j);
        let base = window.base_for_frontier(frontier);
        let operands = instr.num_operands();
        // `a` first, then `b` — matching the paper's "if both operands
        // are OoR, the first operand is handled first".
        if operands >= 1 && instr.a < base && instr.a != OOR_SENTINEL {
            oor_addrs[j].push(instr.a);
            instr.a = OOR_SENTINEL;
            num_oor += 1;
        }
        if operands >= 2 && instr.b < base && instr.b != OOR_SENTINEL {
            // INV duplicates `a` into `b`; keep them in sync without a
            // second queue pop.
            oor_addrs[j].push(instr.b);
            instr.b = OOR_SENTINEL;
            num_oor += 1;
        }
    }
    LoweredProgram { program: lowered, oor_addrs, num_oor }
}

/// End-to-end compilation summary for one strategy/SWW configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileStats {
    /// Instructions in the program.
    pub instructions: usize,
    /// AND instructions (tables).
    pub and_count: usize,
    /// Wires written back to DRAM (live bits set).
    pub live_count: usize,
    /// OoRW-queue reads.
    pub oor_count: usize,
    /// Fraction of produced wires that are spent (never written back).
    pub spent_percent: f64,
}

/// Compiles a circuit with the given strategy and SWW size, running
/// reorder → rename → ESW → OoR marking; returns the lowered program and
/// its statistics.
pub fn compile(
    circuit: &Circuit,
    kind: ReorderKind,
    window: WindowModel,
) -> (LoweredProgram, CompileStats) {
    let mut program = reorder(circuit, kind, window);
    eliminate_spent_wires(&mut program, window);
    let lowered = mark_out_of_range(&program, window);
    let live_count = lowered.program.instructions.iter().filter(|i| i.live).count();
    let stats = CompileStats {
        instructions: lowered.program.instructions.len(),
        and_count: lowered.program.num_and(),
        live_count,
        oor_count: lowered.num_oor,
        spent_percent: if lowered.program.instructions.is_empty() {
            0.0
        } else {
            100.0 * (1.0 - live_count as f64 / lowered.program.instructions.len() as f64)
        },
    };
    (lowered, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haac_circuit::Builder;

    fn adder_circuit(width: u32) -> Circuit {
        let mut b = Builder::new();
        let x = b.input_garbler(width);
        let y = b.input_evaluator(width);
        let (s, c) = b.add_words(&x, &y);
        let mut out = s;
        out.push(c);
        b.finish(out).unwrap()
    }

    #[test]
    fn assemble_is_renamed_and_valid() {
        let c = adder_circuit(8);
        let p = assemble(&c);
        assert!(p.validate().is_ok());
        assert_eq!(p.instructions.len(), c.num_gates());
        assert_eq!(p.num_and(), c.num_and_gates());
    }

    #[test]
    fn full_reorder_is_level_sorted_and_valid() {
        let c = adder_circuit(8);
        let p = full_reorder(&c);
        assert!(p.validate().is_ok());
        // Levels of successive instructions must be non-decreasing.
        let levels = c.wire_levels();
        let gates = c.gates();
        let inst_levels: Vec<u32> =
            p.source_gate.iter().map(|&g| levels[gates[g as usize].out as usize]).collect();
        assert!(inst_levels.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn segment_reorder_keeps_segments_contiguous() {
        let c = adder_circuit(16);
        let seg = 8;
        let p = segment_reorder(&c, seg);
        assert!(p.validate().is_ok());
        // Each segment must be a permutation of the baseline segment.
        for (s, chunk) in p.source_gate.chunks(seg).enumerate() {
            let mut sorted: Vec<u32> = chunk.to_vec();
            sorted.sort_unstable();
            let expect: Vec<u32> = (s * seg..(s * seg + chunk.len())).map(|v| v as u32).collect();
            assert_eq!(sorted, expect, "segment {s}");
        }
    }

    #[test]
    fn esw_keeps_outputs_live() {
        let c = adder_circuit(8);
        let window = WindowModel::new(4); // tiny SWW forces spills
        let mut p = assemble(&c);
        eliminate_spent_wires(&mut p, window);
        for &out in &p.output_addrs.clone() {
            if out >= p.first_output_addr() {
                let idx = (out - p.first_output_addr()) as usize;
                assert!(p.instructions[idx].live, "circuit output must stay live");
            }
        }
    }

    #[test]
    fn esw_with_huge_window_spills_only_outputs() {
        let c = adder_circuit(8);
        let window = WindowModel::new(1 << 20);
        let mut p = assemble(&c);
        eliminate_spent_wires(&mut p, window);
        let live: usize = p.instructions.iter().filter(|i| i.live).count();
        let outputs_produced =
            p.output_addrs.iter().filter(|&&o| o >= p.first_output_addr()).count();
        assert_eq!(live, outputs_produced, "nothing is OoR under a huge window");
    }

    #[test]
    fn oor_marking_rewrites_to_sentinel() {
        let c = adder_circuit(8);
        let window = WindowModel::new(4);
        let p = assemble(&c);
        let lowered = mark_out_of_range(&p, window);
        assert!(lowered.num_oor > 0, "a tiny SWW must force OoR reads");
        for (j, instr) in lowered.program.instructions.iter().enumerate() {
            let n_sentinels = [instr.a, instr.b]
                .iter()
                .take(instr.num_operands())
                .filter(|&&x| x == OOR_SENTINEL)
                .count();
            assert_eq!(n_sentinels, lowered.oor_addrs[j].len(), "instr {j}");
        }
        let total: usize = lowered.oor_addrs.iter().map(|v| v.len()).sum();
        assert_eq!(total, lowered.num_oor);
    }

    #[test]
    fn huge_window_has_no_oor() {
        let c = adder_circuit(8);
        let p = assemble(&c);
        let lowered = mark_out_of_range(&p, WindowModel::new(1 << 20));
        assert_eq!(lowered.num_oor, 0);
    }

    #[test]
    fn compile_stats_are_consistent() {
        let c = adder_circuit(32);
        let window = WindowModel::new(64);
        for kind in [ReorderKind::Baseline, ReorderKind::Full, ReorderKind::Segment] {
            let (lowered, stats) = compile(&c, kind, window);
            assert!(lowered.program.validate().is_ok(), "{kind:?}");
            assert_eq!(stats.instructions, c.num_gates());
            assert_eq!(stats.and_count, c.num_and_gates());
            assert!(stats.spent_percent >= 0.0 && stats.spent_percent <= 100.0);
        }
    }

    #[test]
    fn full_reorder_increases_or_preserves_parallel_front() {
        // On a wide adder-tree-ish circuit, full reorder groups level-0
        // gates first. Build 4 independent adders.
        let mut b = Builder::new();
        let x = b.input_garbler(32);
        let y = b.input_evaluator(32);
        let mut outs = Vec::new();
        for k in 0..4 {
            let (s, _) = b.add_words(&x[8 * k..8 * (k + 1)], &y[8 * k..8 * (k + 1)]);
            outs.extend(s);
        }
        let c = b.finish(outs).unwrap();
        let p = full_reorder(&c);
        let levels = c.wire_levels();
        let gates = c.gates();
        // The first 4+ instructions must all be level-1 gates (one per adder).
        let first_levels: Vec<u32> =
            p.source_gate[..4].iter().map(|&g| levels[gates[g as usize].out as usize]).collect();
        assert!(first_levels.iter().all(|&l| l == 1), "{first_levels:?}");
    }
}
