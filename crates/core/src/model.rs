//! Area, power, and energy model (paper §6.4, Table 4, Fig. 9).
//!
//! The paper's silicon numbers come from synthesis in TSMC 28HPC scaled
//! to 16 nm; per DESIGN.md we reproduce the *arithmetic* of the analysis
//! with the published per-component constants, parameterized by the
//! accelerator configuration:
//!
//! | Component      | Area (mm², 16 GE/2 MB) | Power (mW) |
//! |----------------|------------------------|------------|
//! | Half-Gate      | 2.15                   | 1253       |
//! | FreeXOR        | 9.51e-4                | 0.321      |
//! | FWD network    | 1.80e-3                | 0.255      |
//! | Crossbar       | 7.27e-2                | 16.6       |
//! | SWW SRAM       | 1.94                   | 196        |
//! | Queue SRAM     | 0.173                  | 35.5       |
//! | HBM2 PHY       | 14.9                   | 225 (TDP)  |
//!
//! Energy (Fig. 9) distributes each component's power over the cycles it
//! is actually active, using the simulator's activity counters.

use crate::sim::{DramKind, HaacConfig, SimReport};

/// Reference configuration of Table 4.
const REF_GES: f64 = 16.0;
const REF_SWW_BYTES: f64 = 2.0 * 1024.0 * 1024.0;

/// Per-component area/power at the Table 4 reference design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Component name as it appears in Table 4.
    pub name: &'static str,
    /// Area in mm² (16 nm).
    pub area_mm2: f64,
    /// Average power in mW.
    pub power_mw: f64,
}

/// The Table 4 breakdown for an arbitrary configuration (linear scaling
/// in GE count for compute/forwarding/crossbar, in capacity for SRAMs).
#[derive(Debug, Clone, PartialEq)]
pub struct AreaPowerBreakdown {
    /// Per-component rows, in Table 4 order.
    pub components: Vec<Component>,
    /// The HBM2 PHY row (reported separately, as in the paper).
    pub hbm_phy: Component,
}

impl AreaPowerBreakdown {
    /// Builds the breakdown for a configuration.
    pub fn for_config(config: &HaacConfig) -> AreaPowerBreakdown {
        let ge_scale = config.num_ges as f64 / REF_GES;
        let sww_scale = config.sww_bytes as f64 / REF_SWW_BYTES;
        let components = vec![
            Component { name: "Half-Gate", area_mm2: 2.15 * ge_scale, power_mw: 1253.0 * ge_scale },
            Component { name: "FreeXOR", area_mm2: 9.51e-4 * ge_scale, power_mw: 0.321 * ge_scale },
            Component { name: "FWD", area_mm2: 1.80e-3 * ge_scale, power_mw: 0.255 * ge_scale },
            Component { name: "Crossbar", area_mm2: 7.27e-2 * ge_scale, power_mw: 16.6 * ge_scale },
            Component {
                name: "SWW (SRAM)",
                area_mm2: 1.94 * sww_scale,
                power_mw: 196.0 * sww_scale,
            },
            Component {
                name: "Queues (SRAM)",
                area_mm2: 0.173 * ge_scale,
                power_mw: 35.5 * ge_scale,
            },
        ];
        AreaPowerBreakdown {
            components,
            hbm_phy: Component { name: "HBM2 PHY", area_mm2: 14.9, power_mw: 225.0 },
        }
    }

    /// Total HAAC IP area (mm², excluding the PHY, as the paper reports).
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }

    /// Total HAAC average power (mW, excluding the PHY).
    pub fn total_power_mw(&self) -> f64 {
        self.components.iter().map(|c| c.power_mw).sum()
    }
}

/// Energy attributed to one component for a simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyShare {
    /// Component name (Fig. 9 legend).
    pub name: &'static str,
    /// Energy in joules.
    pub joules: f64,
}

/// Fig. 9's per-benchmark energy breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyBreakdown {
    /// Energy per component: Half-Gate, Crossbar, SRAM, Others, HBM2 PHY.
    pub shares: Vec<EnergyShare>,
}

impl EnergyBreakdown {
    /// Derives the breakdown from a simulation report.
    ///
    /// Per-op energies are calibrated so a fully utilized Table 4 design
    /// dissipates exactly the Table 4 powers:
    /// `e_op = P_component / peak_op_rate`. The PHY dissipates its TDP
    /// for the whole runtime (it is always on).
    pub fn from_report(report: &SimReport) -> EnergyBreakdown {
        let config = &report.config;
        let ges = config.num_ges as f64;
        let clock_hz = config.ge_clock_ghz * 1e9;
        let ge_scale = ges / REF_GES;
        let sww_scale = config.sww_bytes as f64 / REF_SWW_BYTES;

        // Peak rates at this configuration: one AND issue per GE per cycle.
        let and_rate = ges * clock_hz;
        // The banked SWW runs at 2 GHz (§5): peak rate is one access per
        // bank per SWW cycle.
        let sww_rate = config.num_banks() as f64 * 2.0 * clock_hz;

        let e_and = (1253.0e-3 * ge_scale) / and_rate;
        let e_free = (0.321e-3 * ge_scale) / and_rate;
        let e_xbar = (16.6e-3 * ge_scale) / sww_rate;
        let e_sww = (196.0e-3 * sww_scale) / sww_rate;
        let e_queue_byte =
            (35.5e-3 * ge_scale) / (config.dram.bytes_per_second().min(64.0 * clock_hz));
        let e_fwd = (0.255e-3 * ge_scale) / and_rate;

        let sww_accesses = (report.sww_reads + report.sww_writes) as f64;
        let queued_bytes = (report.traffic.instr_bytes
            + report.traffic.table_bytes
            + report.traffic.oorw_bytes) as f64;

        let halfgate = report.and_count as f64 * e_and;
        let crossbar = sww_accesses * e_xbar;
        let sram = sww_accesses * e_sww + queued_bytes * e_queue_byte;
        let others = report.free_count as f64 * e_free + report.instructions as f64 * e_fwd;
        // PHY energy is activity-based: the 225 mW TDP at the PHY's peak
        // bandwidth gives a per-byte cost (0.44 pJ/B for HBM2), applied
        // to the bytes actually moved.
        let phy = match config.dram {
            DramKind::Infinite => 0.0,
            dram => {
                let per_byte = 225.0e-3 / dram.bytes_per_second();
                per_byte * report.traffic.total() as f64
            }
        };

        EnergyBreakdown {
            shares: vec![
                EnergyShare { name: "Half-Gate", joules: halfgate },
                EnergyShare { name: "Crossbar", joules: crossbar },
                EnergyShare { name: "SRAM", joules: sram },
                EnergyShare { name: "Others", joules: others },
                EnergyShare { name: "HBM2 PHY", joules: phy },
            ],
        }
    }

    /// Total energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.shares.iter().map(|s| s.joules).sum()
    }

    /// Normalized percentage shares (Fig. 9's stacked bars).
    pub fn percentages(&self) -> Vec<(&'static str, f64)> {
        let total = self.total_joules().max(f64::MIN_POSITIVE);
        self.shares.iter().map(|s| (s.name, 100.0 * s.joules / total)).collect()
    }
}

/// The paper's CPU average power (W) used for the Fig. 9 efficiency
/// comparison (§6.4: "dissipating an average of 25W across benchmarks").
pub const CPU_AVG_POWER_W: f64 = 25.0;

/// Energy-efficiency improvement of HAAC over a CPU run (Fig. 9's red
/// annotations): `(P_cpu × t_cpu) / E_haac`.
pub fn efficiency_vs_cpu(report: &SimReport, cpu_seconds: f64) -> f64 {
    let haac = EnergyBreakdown::from_report(report).total_joules();
    (CPU_AVG_POWER_W * cpu_seconds) / haac.max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Role, Stalls, Traffic};

    fn reference_config() -> HaacConfig {
        HaacConfig::default()
    }

    #[test]
    fn table4_reference_totals() {
        let b = AreaPowerBreakdown::for_config(&reference_config());
        // Paper: total HAAC 4.33 mm², 1502 mW.
        assert!((b.total_area_mm2() - 4.33).abs() < 0.05, "area {}", b.total_area_mm2());
        assert!((b.total_power_mw() - 1502.0).abs() < 5.0, "power {}", b.total_power_mw());
        assert!((b.hbm_phy.area_mm2 - 14.9).abs() < 1e-9);
    }

    #[test]
    fn area_scales_with_ges() {
        let small =
            AreaPowerBreakdown::for_config(&HaacConfig { num_ges: 4, ..reference_config() });
        let big = AreaPowerBreakdown::for_config(&reference_config());
        let hg_small = small.components[0].area_mm2;
        let hg_big = big.components[0].area_mm2;
        assert!((hg_big / hg_small - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sww_area_scales_with_capacity() {
        let half = AreaPowerBreakdown::for_config(&HaacConfig {
            sww_bytes: 1024 * 1024,
            ..reference_config()
        });
        let sww = half.components.iter().find(|c| c.name == "SWW (SRAM)").unwrap();
        assert!((sww.area_mm2 - 0.97).abs() < 1e-6);
    }

    fn fake_report(and_count: u64, seconds: f64) -> SimReport {
        SimReport {
            cycles: (seconds * 1e9) as u64,
            seconds,
            instructions: and_count * 3,
            and_count,
            free_count: and_count * 2,
            traffic: Traffic {
                instr_bytes: and_count * 15,
                table_bytes: and_count * 32,
                oorw_bytes: 0,
                live_bytes: and_count * 4,
                preload_bytes: 0,
            },
            stalls: Stalls::default(),
            sww_reads: and_count * 6,
            sww_writes: and_count * 3,
            per_ge_instructions: vec![],
            config: reference_config(),
        }
    }

    #[test]
    fn energy_shares_are_positive_and_sum() {
        let report = fake_report(1_000_000, 1e-3);
        let e = EnergyBreakdown::from_report(&report);
        assert!(e.total_joules() > 0.0);
        let pct: f64 = e.percentages().iter().map(|(_, p)| p).sum();
        assert!((pct - 100.0).abs() < 1e-6);
        // Half-Gate should dominate compute energy (paper: ~61% average).
        let hg = &e.shares[0];
        assert!(hg.joules > 0.0);
    }

    #[test]
    fn efficiency_scales_with_cpu_time_and_activity() {
        let report = fake_report(1_000_000, 1e-3);
        // A slower CPU makes HAAC look comparatively more efficient.
        assert!(efficiency_vs_cpu(&report, 2.0) > efficiency_vs_cpu(&report, 1.0));
        // More gate activity costs more energy.
        let busier = fake_report(2_000_000, 1e-3);
        let e1 = EnergyBreakdown::from_report(&report).total_joules();
        let e2 = EnergyBreakdown::from_report(&busier).total_joules();
        assert!(e2 > e1);
    }

    #[test]
    fn garbler_and_evaluator_share_the_model() {
        let mut r = fake_report(1000, 1e-5);
        r.config.role = Role::Garbler;
        let e = EnergyBreakdown::from_report(&r);
        assert!(e.total_joules() > 0.0);
    }
}
