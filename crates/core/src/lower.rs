//! Lowering circuits for slot-addressed streaming execution.
//!
//! The gc hot path historically ran on the raw netlist with a
//! hash-mapped label store; the HAAC co-design says that is money left
//! on the table — once the compiler has reordered and renamed a
//! program, labels can live in a tagless scratchpad indexed by
//! `addr % window` and the window size is a *static* property of the
//! program. [`lower_for_streaming`] runs that pipeline once per
//! circuit (reorder → rename → window-size) and returns a
//! [`StreamingPlan`] that sessions reuse: the renamed instruction
//! stream ([`haac_gc::SlotProgram`]), the [`WindowModel`] sized so
//! every operand read is in-window (zero OoR traffic), and the static
//! peak-live residency — so warm sessions skip the per-session
//! liveness analysis entirely.
//!
//! The default lowering keeps the **baseline** gate order, which
//! preserves table order and per-gate tweaks: transcripts are
//! bit-identical to garbling the raw netlist. Reordered plans
//! ([`lower_with_reorder`] over a [`crate::compiler`] reorder) are
//! valid protocols when both parties lower identically — the session
//! layer negotiates the [`ReorderKind`] in its handshake so real
//! sessions can run the ILP-friendly `Full`/`Segment` schedules — but
//! change the transcript relative to the raw circuit.
//!
//! A plan may also be built against a **forced small window**
//! ([`lower_with_window`]): reads farther than the window are rewritten
//! to OoR-sentinel slots backed by the gc layer's software OoRW queue
//! (enqueue at producer, drain at consumer), so adversarial
//! wire-distance circuits stream O(window + queue) labels instead of
//! forcing the slab up to the worst skip connection.

use haac_circuit::Circuit;
use haac_gc::{SlotInstr, SlotOp, SlotProgram};

use crate::compiler::{assemble, full_reorder, segment_reorder, ReorderKind};
use crate::isa::{Instruction, Opcode, Program, OOR_SENTINEL};
use crate::window::WindowModel;

/// A circuit lowered once for streaming execution: everything a session
/// needs beyond fresh randomness, cacheable and shareable across
/// sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingPlan {
    /// The renamed instruction stream driving the slot-slab executors.
    pub program: SlotProgram,
    /// The window the slab is provisioned with — the smallest power of
    /// two under which every read of this program hits the SWW (or the
    /// forced window of [`lower_with_window`], with the spill routed
    /// through the OoRW queue).
    pub window: WindowModel,
    /// The instruction schedule this plan was lowered with. Both
    /// parties of a session must lower identically; the session header
    /// carries this tag so a disagreement fails loudly instead of
    /// diverging transcripts.
    pub reorder: ReorderKind,
}

impl StreamingPlan {
    /// Static peak-live residency of the renamed program (what the
    /// liveness-retired store would measure dynamically).
    #[inline]
    pub fn peak_live(&self) -> usize {
        self.program.peak_live()
    }

    /// AND instructions (= garbled tables a session streams).
    #[inline]
    pub fn and_count(&self) -> usize {
        self.program.and_count()
    }
}

/// Iterator adapting a renamed [`Program`]'s instructions into the gc
/// layer's slot-instruction stream.
///
/// Yields an error for instructions a streaming executor cannot run:
/// NOPs (pipeline filler has no streaming meaning) and OoR-sentinel
/// operands (plans must be built *before* [`mark_out_of_range`]
/// rewrites operands — the slab window is sized so nothing is OoR).
///
/// [`mark_out_of_range`]: crate::compiler::mark_out_of_range
#[derive(Debug, Clone)]
pub struct SlotStream<'p> {
    instrs: std::slice::Iter<'p, Instruction>,
    index: usize,
}

/// Adapts a renamed program's instruction stream for the slot-slab
/// executors (one [`SlotInstr`] per instruction, in program order).
pub fn slot_stream(program: &Program) -> SlotStream<'_> {
    SlotStream { instrs: program.instructions.iter(), index: 0 }
}

impl Iterator for SlotStream<'_> {
    type Item = Result<SlotInstr, String>;

    fn next(&mut self) -> Option<Self::Item> {
        let instr = self.instrs.next()?;
        let i = self.index;
        self.index += 1;
        let op = match instr.op {
            Opcode::And => SlotOp::And,
            Opcode::Xor => SlotOp::Xor,
            Opcode::Inv => SlotOp::Inv,
            Opcode::Nop => {
                return Some(Err(format!("instruction {i} is a NOP; streaming has no filler")))
            }
        };
        let operands = if op == SlotOp::Inv { 1 } else { 2 };
        if [instr.a, instr.b].iter().take(operands).any(|&o| o == OOR_SENTINEL) {
            return Some(Err(format!(
                "instruction {i} carries the OoR sentinel; lower plans before OoR marking"
            )));
        }
        Some(Ok(SlotInstr { a: instr.a, b: instr.b, op }))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.instrs.size_hint()
    }
}

/// Builds a [`StreamingPlan`] from an already renamed (un-lowered)
/// program — the hook for running reordered schedules through the
/// slot-slab executors. `reorder` tags the plan with the schedule the
/// program was built under (session negotiation compares tags, not
/// instruction streams).
///
/// `garbler_inputs + evaluator_inputs` must equal the program's input
/// count (the split is protocol metadata the ISA does not carry).
///
/// # Errors
///
/// Returns an error if the program contains NOPs or OoR sentinels, if
/// the input split does not sum to the program's inputs, or if the
/// stream violates a renaming invariant.
pub fn plan_from_program(
    program: &Program,
    garbler_inputs: u32,
    evaluator_inputs: u32,
    reorder: ReorderKind,
) -> Result<StreamingPlan, String> {
    plan_from_program_impl(program, garbler_inputs, evaluator_inputs, reorder, None)
}

/// Like [`plan_from_program`], but provisions the slab with a **forced
/// window** (rounded up to a power of two, minimum 2) instead of the
/// natural zero-OoR size: reads farther than the window are rewritten
/// to OoR-sentinel slots served by the software OoRW queue, whose peak
/// occupancy is computed statically
/// ([`haac_gc::SlotProgram::oor_queue_bound`]).
///
/// # Errors
///
/// As [`plan_from_program`].
pub fn plan_from_program_with_window(
    program: &Program,
    garbler_inputs: u32,
    evaluator_inputs: u32,
    reorder: ReorderKind,
    window: WindowModel,
) -> Result<StreamingPlan, String> {
    plan_from_program_impl(program, garbler_inputs, evaluator_inputs, reorder, Some(window))
}

fn plan_from_program_impl(
    program: &Program,
    garbler_inputs: u32,
    evaluator_inputs: u32,
    reorder: ReorderKind,
    window: Option<WindowModel>,
) -> Result<StreamingPlan, String> {
    if garbler_inputs + evaluator_inputs != program.num_inputs {
        return Err(format!(
            "input split {garbler_inputs}+{evaluator_inputs} does not match the program's {}",
            program.num_inputs
        ));
    }
    let instrs = slot_stream(program).collect::<Result<Vec<_>, _>>()?;
    let outputs = program.output_addrs.clone();
    let slots = match window {
        Some(w) => SlotProgram::with_window(
            instrs,
            garbler_inputs,
            evaluator_inputs,
            outputs,
            w.sww_wires(),
        )?,
        None => SlotProgram::new(instrs, garbler_inputs, evaluator_inputs, outputs)?,
    };
    let window = WindowModel::new(slots.slot_wires());
    Ok(StreamingPlan { program: slots, window, reorder })
}

/// The renamed program realizing `kind` for this circuit. The segment
/// size of [`ReorderKind::Segment`] is half the circuit's *baseline*
/// natural window — a pure function of the circuit, so both parties
/// derive the same schedule independently.
fn reorder_program(circuit: &Circuit, kind: ReorderKind) -> Program {
    match kind {
        ReorderKind::Baseline => assemble(circuit),
        ReorderKind::Full => full_reorder(circuit),
        ReorderKind::Segment => {
            let segment = (haac_gc::baseline_plan(circuit).slot_wires() / 2).max(1) as usize;
            segment_reorder(circuit, segment)
        }
    }
}

/// Lowers a circuit for streaming execution under the given schedule:
/// reorder → rename → static window sizing. Run once per `(circuit,
/// reorder)` and cache the plan; every session that reuses it skips the
/// per-session analysis pass and runs on the tagless slab.
///
/// [`ReorderKind::Baseline`] preserves gate order and tweaks, so
/// sessions driven by it produce **bit-identical transcripts** to the
/// raw-netlist path; `Full`/`Segment` change the transcript (both
/// parties must lower identically — negotiated in the session header)
/// but expose the ILP the multi-engine garbler feeds on.
pub fn lower_with_reorder(circuit: &Circuit, kind: ReorderKind) -> StreamingPlan {
    plan_from_program(
        &reorder_program(circuit, kind),
        circuit.garbler_inputs(),
        circuit.evaluator_inputs(),
        kind,
    )
    .expect("compiled programs always lower")
}

/// Lowers a circuit against a **forced window** (see
/// [`plan_from_program_with_window`]): the OoRW-queue entry point for
/// deliberately small slabs.
pub fn lower_with_window(
    circuit: &Circuit,
    kind: ReorderKind,
    window: WindowModel,
) -> StreamingPlan {
    plan_from_program_with_window(
        &reorder_program(circuit, kind),
        circuit.garbler_inputs(),
        circuit.evaluator_inputs(),
        kind,
        window,
    )
    .expect("compiled programs always lower")
}

/// Lowers a circuit for streaming execution on the **baseline** order:
/// [`lower_with_reorder`] with [`ReorderKind::Baseline`] — transcripts
/// bit-identical to the raw-netlist path.
pub fn lower_for_streaming(circuit: &Circuit) -> StreamingPlan {
    lower_with_reorder(circuit, ReorderKind::Baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{eliminate_spent_wires, mark_out_of_range};
    use haac_circuit::Builder;
    use haac_gc::stream::Liveness;

    fn mixed_circuit() -> Circuit {
        let mut b = Builder::new();
        let x = b.input_garbler(8);
        let y = b.input_evaluator(8);
        let (s, _) = b.add_words(&x, &y);
        let p = b.mul_words_trunc(&x, &y);
        let lt = b.lt_u(&x, &y);
        let mut out = s;
        out.extend(p);
        out.push(lt);
        b.finish(out).unwrap()
    }

    #[test]
    fn compiler_lowering_matches_the_gc_baseline_plan() {
        // Two roads to the same renamed stream: the compiler pipeline
        // here and haac-gc's inline baseline renaming must agree
        // exactly — they are the same pass.
        let c = mixed_circuit();
        let plan = lower_for_streaming(&c);
        assert_eq!(plan.program, haac_gc::baseline_plan(&c));
    }

    #[test]
    fn plan_window_admits_every_read_and_bounds_peak_live() {
        let c = mixed_circuit();
        let plan = lower_for_streaming(&c);
        assert!(plan.window.sww_wires() >= plan.program.max_operand_distance());
        // Anything live at some instruction is within one window of it.
        assert!(plan.peak_live() <= plan.window.sww_wires() as usize);
        // The static peak equals the dynamic liveness analysis.
        assert_eq!(plan.peak_live(), Liveness::analyze(&c).peak_live_wires(&c));
        assert_eq!(plan.and_count(), c.num_and_gates());
    }

    #[test]
    fn oor_lowered_programs_are_rejected() {
        let c = mixed_circuit();
        let window = WindowModel::new(4); // tiny SWW forces OoR rewrites
        let mut program = assemble(&c);
        eliminate_spent_wires(&mut program, window);
        let lowered = mark_out_of_range(&program, window);
        assert!(lowered.num_oor > 0);
        let err = plan_from_program(
            &lowered.program,
            c.garbler_inputs(),
            c.evaluator_inputs(),
            ReorderKind::Baseline,
        )
        .unwrap_err();
        assert!(err.contains("OoR sentinel"), "{err}");
    }

    #[test]
    fn wrong_input_split_is_rejected() {
        let c = mixed_circuit();
        let program = assemble(&c);
        assert!(plan_from_program(&program, 1, 2, ReorderKind::Baseline).is_err());
    }

    #[test]
    fn reordered_programs_also_lower() {
        let c = mixed_circuit();
        let program = crate::compiler::full_reorder(&c);
        let plan = plan_from_program(
            &program,
            c.garbler_inputs(),
            c.evaluator_inputs(),
            ReorderKind::Full,
        )
        .unwrap();
        assert_eq!(plan.and_count(), c.num_and_gates());
        assert_eq!(plan.reorder, ReorderKind::Full);
        assert!(plan.window.sww_wires() >= plan.program.max_operand_distance());
    }

    #[test]
    fn lower_with_reorder_tags_the_plan_and_keeps_the_gate_count() {
        let c = mixed_circuit();
        for kind in [ReorderKind::Baseline, ReorderKind::Full, ReorderKind::Segment] {
            let plan = lower_with_reorder(&c, kind);
            assert_eq!(plan.reorder, kind);
            assert_eq!(plan.and_count(), c.num_and_gates());
            assert!(!plan.program.has_oor(), "{kind:?}: natural windows never spill");
            assert!(plan.window.sww_wires() >= plan.program.max_operand_distance());
        }
        assert_eq!(lower_for_streaming(&c), lower_with_reorder(&c, ReorderKind::Baseline));
    }

    #[test]
    fn forced_windows_route_far_reads_through_the_oorw_queue() {
        let c = mixed_circuit();
        let natural = lower_for_streaming(&c);
        let forced = WindowModel::new(4); // far below the natural window
        let plan = lower_with_window(&c, ReorderKind::Baseline, forced);
        assert!(natural.window.sww_wires() > 4, "the test needs a genuinely small window");
        assert!(plan.program.has_oor(), "a tiny window must spill");
        assert_eq!(plan.window.sww_wires(), 4);
        assert!(plan.program.oor_queue_bound() > 0);
        assert!(plan.program.oor_queue_bound() <= plan.program.oor_read_count());
        // The instruction count, table count, and outputs are untouched
        // by the rewrite: only operand *routing* changed.
        assert_eq!(plan.and_count(), natural.and_count());
        assert_eq!(plan.program.instrs().len(), natural.program.instrs().len());
        assert_eq!(plan.program.output_addrs(), natural.program.output_addrs());
        // A forced window at (or above) the natural size spills nothing
        // and reproduces the natural plan exactly.
        let roomy = lower_with_window(&c, ReorderKind::Baseline, natural.window);
        assert_eq!(roomy.program, natural.program);
    }
}
