//! Lowering circuits for slot-addressed streaming execution.
//!
//! The gc hot path historically ran on the raw netlist with a
//! hash-mapped label store; the HAAC co-design says that is money left
//! on the table — once the compiler has reordered and renamed a
//! program, labels can live in a tagless scratchpad indexed by
//! `addr % window` and the window size is a *static* property of the
//! program. [`lower_for_streaming`] runs that pipeline once per
//! circuit (reorder → rename → window-size) and returns a
//! [`StreamingPlan`] that sessions reuse: the renamed instruction
//! stream ([`haac_gc::SlotProgram`]), the [`WindowModel`] sized so
//! every operand read is in-window (zero OoR traffic), and the static
//! peak-live residency — so warm sessions skip the per-session
//! liveness analysis entirely.
//!
//! The default lowering keeps the **baseline** gate order, which
//! preserves table order and per-gate tweaks: transcripts are
//! bit-identical to garbling the raw netlist. Reordered plans
//! ([`plan_from_program`] over a [`crate::compiler`] reorder) are valid
//! protocols when both parties lower identically, but change the
//! transcript relative to the raw circuit.

use haac_circuit::Circuit;
use haac_gc::{SlotInstr, SlotOp, SlotProgram};

use crate::compiler::assemble;
use crate::isa::{Instruction, Opcode, Program, OOR_SENTINEL};
use crate::window::WindowModel;

/// A circuit lowered once for streaming execution: everything a session
/// needs beyond fresh randomness, cacheable and shareable across
/// sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingPlan {
    /// The renamed instruction stream driving the slot-slab executors.
    pub program: SlotProgram,
    /// The window the slab is provisioned with — the smallest power of
    /// two under which every read of this program hits the SWW.
    pub window: WindowModel,
}

impl StreamingPlan {
    /// Static peak-live residency of the renamed program (what the
    /// liveness-retired store would measure dynamically).
    #[inline]
    pub fn peak_live(&self) -> usize {
        self.program.peak_live()
    }

    /// AND instructions (= garbled tables a session streams).
    #[inline]
    pub fn and_count(&self) -> usize {
        self.program.and_count()
    }
}

/// Iterator adapting a renamed [`Program`]'s instructions into the gc
/// layer's slot-instruction stream.
///
/// Yields an error for instructions a streaming executor cannot run:
/// NOPs (pipeline filler has no streaming meaning) and OoR-sentinel
/// operands (plans must be built *before* [`mark_out_of_range`]
/// rewrites operands — the slab window is sized so nothing is OoR).
///
/// [`mark_out_of_range`]: crate::compiler::mark_out_of_range
#[derive(Debug, Clone)]
pub struct SlotStream<'p> {
    instrs: std::slice::Iter<'p, Instruction>,
    index: usize,
}

/// Adapts a renamed program's instruction stream for the slot-slab
/// executors (one [`SlotInstr`] per instruction, in program order).
pub fn slot_stream(program: &Program) -> SlotStream<'_> {
    SlotStream { instrs: program.instructions.iter(), index: 0 }
}

impl Iterator for SlotStream<'_> {
    type Item = Result<SlotInstr, String>;

    fn next(&mut self) -> Option<Self::Item> {
        let instr = self.instrs.next()?;
        let i = self.index;
        self.index += 1;
        let op = match instr.op {
            Opcode::And => SlotOp::And,
            Opcode::Xor => SlotOp::Xor,
            Opcode::Inv => SlotOp::Inv,
            Opcode::Nop => {
                return Some(Err(format!("instruction {i} is a NOP; streaming has no filler")))
            }
        };
        let operands = if op == SlotOp::Inv { 1 } else { 2 };
        if [instr.a, instr.b].iter().take(operands).any(|&o| o == OOR_SENTINEL) {
            return Some(Err(format!(
                "instruction {i} carries the OoR sentinel; lower plans before OoR marking"
            )));
        }
        Some(Ok(SlotInstr { a: instr.a, b: instr.b, op }))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.instrs.size_hint()
    }
}

/// Builds a [`StreamingPlan`] from an already renamed (un-lowered)
/// program — the hook for running reordered schedules through the
/// slot-slab executors.
///
/// `garbler_inputs + evaluator_inputs` must equal the program's input
/// count (the split is protocol metadata the ISA does not carry).
///
/// # Errors
///
/// Returns an error if the program contains NOPs or OoR sentinels, if
/// the input split does not sum to the program's inputs, or if the
/// stream violates a renaming invariant.
pub fn plan_from_program(
    program: &Program,
    garbler_inputs: u32,
    evaluator_inputs: u32,
) -> Result<StreamingPlan, String> {
    if garbler_inputs + evaluator_inputs != program.num_inputs {
        return Err(format!(
            "input split {garbler_inputs}+{evaluator_inputs} does not match the program's {}",
            program.num_inputs
        ));
    }
    let instrs = slot_stream(program).collect::<Result<Vec<_>, _>>()?;
    let slots =
        SlotProgram::new(instrs, garbler_inputs, evaluator_inputs, program.output_addrs.clone())?;
    let window = WindowModel::new(slots.slot_wires());
    Ok(StreamingPlan { program: slots, window })
}

/// Lowers a circuit for streaming execution: baseline reorder → rename
/// (via [`assemble`]) → static window sizing. Run once per circuit and
/// cache the plan; every session that reuses it skips the per-session
/// liveness pass and runs on the tagless slab.
///
/// The baseline order preserves gate order and tweaks, so sessions
/// driven by this plan produce **bit-identical transcripts** to the
/// raw-netlist path.
pub fn lower_for_streaming(circuit: &Circuit) -> StreamingPlan {
    plan_from_program(&assemble(circuit), circuit.garbler_inputs(), circuit.evaluator_inputs())
        .expect("assembled programs always lower")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{eliminate_spent_wires, mark_out_of_range};
    use haac_circuit::Builder;
    use haac_gc::stream::Liveness;

    fn mixed_circuit() -> Circuit {
        let mut b = Builder::new();
        let x = b.input_garbler(8);
        let y = b.input_evaluator(8);
        let (s, _) = b.add_words(&x, &y);
        let p = b.mul_words_trunc(&x, &y);
        let lt = b.lt_u(&x, &y);
        let mut out = s;
        out.extend(p);
        out.push(lt);
        b.finish(out).unwrap()
    }

    #[test]
    fn compiler_lowering_matches_the_gc_baseline_plan() {
        // Two roads to the same renamed stream: the compiler pipeline
        // here and haac-gc's inline baseline renaming must agree
        // exactly — they are the same pass.
        let c = mixed_circuit();
        let plan = lower_for_streaming(&c);
        assert_eq!(plan.program, haac_gc::baseline_plan(&c));
    }

    #[test]
    fn plan_window_admits_every_read_and_bounds_peak_live() {
        let c = mixed_circuit();
        let plan = lower_for_streaming(&c);
        assert!(plan.window.sww_wires() >= plan.program.max_operand_distance());
        // Anything live at some instruction is within one window of it.
        assert!(plan.peak_live() <= plan.window.sww_wires() as usize);
        // The static peak equals the dynamic liveness analysis.
        assert_eq!(plan.peak_live(), Liveness::analyze(&c).peak_live_wires(&c));
        assert_eq!(plan.and_count(), c.num_and_gates());
    }

    #[test]
    fn oor_lowered_programs_are_rejected() {
        let c = mixed_circuit();
        let window = WindowModel::new(4); // tiny SWW forces OoR rewrites
        let mut program = assemble(&c);
        eliminate_spent_wires(&mut program, window);
        let lowered = mark_out_of_range(&program, window);
        assert!(lowered.num_oor > 0);
        let err = plan_from_program(&lowered.program, c.garbler_inputs(), c.evaluator_inputs())
            .unwrap_err();
        assert!(err.contains("OoR sentinel"), "{err}");
    }

    #[test]
    fn wrong_input_split_is_rejected() {
        let c = mixed_circuit();
        let program = assemble(&c);
        assert!(plan_from_program(&program, 1, 2).is_err());
    }

    #[test]
    fn reordered_programs_also_lower() {
        let c = mixed_circuit();
        let program = crate::compiler::full_reorder(&c);
        let plan = plan_from_program(&program, c.garbler_inputs(), c.evaluator_inputs()).unwrap();
        assert_eq!(plan.and_count(), c.num_and_gates());
        assert!(plan.window.sww_wires() >= plan.program.max_operand_distance());
    }
}
