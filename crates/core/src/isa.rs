//! The HAAC instruction set (paper §3.1.3).
//!
//! A HAAC program has no control flow and no explicit memory
//! instructions: it is a straight-line stream of gate operations. Each
//! instruction encodes:
//!
//! - the operation (2 bits: AND / XOR / INV / NOP),
//! - two input wire addresses (17 bits each for a 2 MB SWW; the address
//!   `0` is reserved as the *out-of-range sentinel*, telling the GE to
//!   pop the operand from its OoRW queue instead of reading the SWW),
//! - a *live* bit: whether the output wire must spill to DRAM
//!   (set by the eliminating-spent-wires pass, §4.2.3).
//!
//! Output addresses are **not** encoded: after the renaming pass
//! (§4.2.2) the i-th instruction writes wire address
//! `num_inputs + 1 + i`, so hardware derives it from the program
//! counter.

use std::fmt;

/// The wire-address sentinel meaning "read this operand from the OoRW
/// queue".
pub const OOR_SENTINEL: u32 = 0;

/// HAAC opcode (2 bits in hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Half-gate AND: consumes a garbled table.
    And,
    /// FreeXOR: single-cycle, no table.
    Xor,
    /// Free inversion (label relabeling), executed by the FreeXOR unit.
    Inv,
    /// No-op (pipeline filler).
    Nop,
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Opcode::And => f.write_str("AND"),
            Opcode::Xor => f.write_str("XOR"),
            Opcode::Inv => f.write_str("INV"),
            Opcode::Nop => f.write_str("NOP"),
        }
    }
}

/// One HAAC instruction.
///
/// Operands are *program wire addresses*: inputs occupy `1..=num_inputs`
/// and instruction `i` writes `num_inputs + 1 + i`. `OOR_SENTINEL` (0)
/// marks an operand the compiler has routed through the OoRW queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// First input wire address (or [`OOR_SENTINEL`]).
    pub a: u32,
    /// Second input wire address (or [`OOR_SENTINEL`]); equals `a` for INV.
    pub b: u32,
    /// The operation.
    pub op: Opcode,
    /// Whether the output wire spills to DRAM (cleared by ESW when the
    /// wire is provably spent within its SWW window).
    pub live: bool,
}

impl Instruction {
    /// Creates an instruction with the live bit set (the conservative
    /// default before ESW runs).
    pub fn new(op: Opcode, a: u32, b: u32) -> Instruction {
        Instruction { a, b, op, live: true }
    }

    /// Number of operands actually read from wires (sentinel operands
    /// still count — they are read from the OoRW queue).
    pub fn num_operands(&self) -> usize {
        match self.op {
            Opcode::And | Opcode::Xor => 2,
            Opcode::Inv => 1,
            Opcode::Nop => 0,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}, {}{}", self.op, self.a, self.b, if self.live { " [live]" } else { "" })
    }
}

/// A complete HAAC program: renamed, straight-line instructions plus the
/// metadata needed to run and decode it.
///
/// Invariants (maintained by the compiler, checked by
/// [`Program::validate`]):
///
/// - instruction `i`'s output address is `first_output_addr() + i`;
/// - every non-sentinel operand is a previously defined address;
/// - `source_gate[i]` maps instruction `i` back to the originating
///   circuit gate (used to fetch gate semantics and for debugging).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The instruction stream in program (= execution = renamed) order.
    pub instructions: Vec<Instruction>,
    /// Number of primary inputs (addresses `1..=num_inputs`).
    pub num_inputs: u32,
    /// Program wire addresses of the circuit outputs, in output order.
    pub output_addrs: Vec<u32>,
    /// For each instruction, the index of the circuit gate it implements.
    pub source_gate: Vec<u32>,
}

impl Program {
    /// Address written by the first instruction.
    #[inline]
    pub fn first_output_addr(&self) -> u32 {
        self.num_inputs + 1
    }

    /// Address written by instruction `i`.
    #[inline]
    pub fn output_addr(&self, i: usize) -> u32 {
        self.first_output_addr() + i as u32
    }

    /// Total number of wire addresses (sentinel + inputs + outputs).
    #[inline]
    pub fn num_addrs(&self) -> u32 {
        self.first_output_addr() + self.instructions.len() as u32
    }

    /// Number of AND instructions (= garbled tables consumed).
    pub fn num_and(&self) -> usize {
        self.instructions.iter().filter(|i| i.op == Opcode::And).count()
    }

    /// Fraction of instructions whose live bit is set.
    pub fn live_fraction(&self) -> f64 {
        if self.instructions.is_empty() {
            return 0.0;
        }
        let live = self.instructions.iter().filter(|i| i.live).count();
        live as f64 / self.instructions.len() as f64
    }

    /// Bits per encoded instruction for a given SWW capacity:
    /// 2 (op) + 2 × address width + 1 (live), per §3.1.3.
    pub fn instruction_bits(sww_wires: u32) -> u32 {
        let addr_bits = 32 - (sww_wires.max(2) - 1).leading_zeros();
        2 + 2 * addr_bits + 1
    }

    /// Bytes per encoded instruction (rounded up).
    pub fn instruction_bytes(sww_wires: u32) -> u32 {
        Program::instruction_bits(sww_wires).div_ceil(8)
    }

    /// Encodes the instruction stream into the hardware's bit format:
    /// per instruction `op (2b) | a (addr bits) | b (addr bits) |
    /// live (1b)`, packed little-endian, each instruction padded to a
    /// whole byte (§3.1.3's 37 bits → 5 B for a 2 MB SWW).
    ///
    /// Operand fields hold the *distance from the instruction's own
    /// output address* (`out - operand`), which the SWW window contract
    /// bounds to `1..sww_wires` — so 17 bits suffice for a 2 MB SWW and
    /// the value 0 remains free for the OoRW sentinel, exactly matching
    /// the paper's field widths.
    ///
    /// # Panics
    ///
    /// Panics if an operand lies outside its SWW window (i.e.
    /// [`crate::compiler::mark_out_of_range`] has not been run for this
    /// `sww_wires`).
    pub fn encode(&self, sww_wires: u32) -> Vec<u8> {
        let addr_bits = 32 - (sww_wires.max(2) - 1).leading_zeros();
        let instr_bytes = Program::instruction_bytes(sww_wires) as usize;
        let mut out = Vec::with_capacity(self.instructions.len() * instr_bytes);
        for (i, instr) in self.instructions.iter().enumerate() {
            let out_addr = self.output_addr(i);
            let field = |operand: u32| -> u64 {
                if operand == OOR_SENTINEL {
                    return 0;
                }
                let distance = u64::from(out_addr - operand);
                assert!(
                    distance < u64::from(sww_wires),
                    "operand {operand} of instruction {i} is outside the {sww_wires}-wire window"
                );
                distance
            };
            let op = match instr.op {
                Opcode::And => 0u64,
                Opcode::Xor => 1,
                Opcode::Inv => 2,
                Opcode::Nop => 3,
            };
            let word = op
                | (field(instr.a) << 2)
                | (field(instr.b) << (2 + addr_bits))
                | ((instr.live as u64) << (2 + 2 * addr_bits));
            out.extend_from_slice(&word.to_le_bytes()[..instr_bytes]);
        }
        out
    }

    /// Decodes a byte stream produced by [`Program::encode`] back into
    /// instructions. `first_output_addr` anchors the frontier-relative
    /// operand fields (`num_inputs + 1` for a whole program).
    ///
    /// # Errors
    ///
    /// Returns an error if the stream length is not a whole number of
    /// instructions.
    pub fn decode_instructions(
        bytes: &[u8],
        sww_wires: u32,
        first_output_addr: u32,
    ) -> Result<Vec<Instruction>, String> {
        let addr_bits = 32 - (sww_wires.max(2) - 1).leading_zeros();
        let instr_bytes = Program::instruction_bytes(sww_wires) as usize;
        if !bytes.len().is_multiple_of(instr_bytes) {
            return Err(format!(
                "stream of {} bytes is not a multiple of the {instr_bytes}-byte encoding",
                bytes.len()
            ));
        }
        let mask = (1u64 << addr_bits) - 1;
        let mut out = Vec::with_capacity(bytes.len() / instr_bytes);
        for (i, chunk) in bytes.chunks(instr_bytes).enumerate() {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            let word = u64::from_le_bytes(word);
            let out_addr = first_output_addr + i as u32;
            let op = match word & 3 {
                0 => Opcode::And,
                1 => Opcode::Xor,
                2 => Opcode::Inv,
                _ => Opcode::Nop,
            };
            let operand = |field: u64| -> u32 {
                if field == 0 {
                    OOR_SENTINEL
                } else {
                    out_addr - field as u32
                }
            };
            let a = operand((word >> 2) & mask);
            let b = operand((word >> (2 + addr_bits)) & mask);
            let live = (word >> (2 + 2 * addr_bits)) & 1 == 1;
            out.push(Instruction { a, b, op, live });
        }
        Ok(out)
    }

    /// Checks the program invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.source_gate.len() != self.instructions.len() {
            return Err(format!(
                "source_gate has {} entries for {} instructions",
                self.source_gate.len(),
                self.instructions.len()
            ));
        }
        for (i, instr) in self.instructions.iter().enumerate() {
            let out = self.output_addr(i);
            for operand in [instr.a, instr.b].iter().take(instr.num_operands()) {
                if *operand >= out && *operand != OOR_SENTINEL {
                    return Err(format!(
                        "instruction {i} ({instr}) reads address {operand} >= its output {out}"
                    ));
                }
            }
        }
        for &out in &self.output_addrs {
            if out == OOR_SENTINEL || out >= self.num_addrs() {
                return Err(format!("output address {out} out of range"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        // inputs at 1,2; instrs write 3,4,5.
        Program {
            instructions: vec![
                Instruction::new(Opcode::Xor, 1, 2),
                Instruction::new(Opcode::And, 3, 1),
                Instruction::new(Opcode::Inv, 4, 4),
            ],
            num_inputs: 2,
            output_addrs: vec![5],
            source_gate: vec![0, 1, 2],
        }
    }

    #[test]
    fn addresses_are_sequential() {
        let p = sample_program();
        assert_eq!(p.first_output_addr(), 3);
        assert_eq!(p.output_addr(2), 5);
        assert_eq!(p.num_addrs(), 6);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_catches_future_reads() {
        let mut p = sample_program();
        p.instructions[0] = Instruction::new(Opcode::Xor, 4, 2);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_outputs() {
        let mut p = sample_program();
        p.output_addrs = vec![99];
        assert!(p.validate().is_err());
    }

    #[test]
    fn encoding_width_matches_paper() {
        // 2 MB SWW = 131072 wires → 17-bit addresses → 37 bits (§3.1.3).
        assert_eq!(Program::instruction_bits(131_072), 2 + 2 * 17 + 1);
        assert_eq!(Program::instruction_bytes(131_072), 5);
    }

    #[test]
    fn live_fraction_counts() {
        let mut p = sample_program();
        assert_eq!(p.live_fraction(), 1.0);
        p.instructions[0].live = false;
        assert!((p.live_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn and_count() {
        assert_eq!(sample_program().num_and(), 1);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut p = sample_program();
        p.instructions[1].live = false;
        for sww in [8u32, 64, 131_072] {
            let bytes = p.encode(sww);
            assert_eq!(
                bytes.len(),
                p.instructions.len() * Program::instruction_bytes(sww) as usize
            );
            let decoded = Program::decode_instructions(&bytes, sww, p.first_output_addr()).unwrap();
            assert_eq!(decoded, p.instructions, "sww={sww}");
        }
    }

    #[test]
    fn encode_preserves_oor_sentinel() {
        let mut p = sample_program();
        p.instructions[1].a = OOR_SENTINEL;
        let bytes = p.encode(64);
        let decoded = Program::decode_instructions(&bytes, 64, p.first_output_addr()).unwrap();
        assert_eq!(decoded[1].a, OOR_SENTINEL);
        assert_eq!(decoded, p.instructions);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn encode_panics_on_unlowered_oor_operand() {
        // Instruction 60 reading address 1 is far outside a 4-wire window.
        let mut instructions = vec![Instruction::new(Opcode::Xor, 1, 2); 64];
        for (i, instr) in instructions.iter_mut().enumerate().skip(1) {
            instr.a = 2 + i as u32; // previous output
        }
        instructions[60].a = 1;
        let p = Program {
            instructions,
            num_inputs: 2,
            output_addrs: vec![3],
            source_gate: vec![0; 64],
        };
        let _ = p.encode(4);
    }

    #[test]
    fn decode_rejects_ragged_streams() {
        let p = sample_program();
        let mut bytes = p.encode(131_072);
        bytes.pop();
        assert!(Program::decode_instructions(&bytes, 131_072, p.first_output_addr()).is_err());
    }

    #[test]
    fn encoding_is_dense_for_2mb_sww() {
        // 3 instructions × 5 bytes (37 bits rounded up).
        assert_eq!(sample_program().encode(131_072).len(), 15);
    }
}
