//! Sliding-wire-window address math (paper §3.1.1).
//!
//! The SWW holds a contiguous, sliding range of wire addresses. It is
//! logically split in half: whenever the output-wire frontier crosses the
//! top of the current range, the window advances by half its capacity.
//! Because renaming makes output addresses sequential, the window
//! position is a *pure function of the instruction index* — which is
//! what lets the compiler decide statically whether each operand read
//! hits the SWW or must stream in through the OoRW queue.
//!
//! This module is the single source of truth for that math; the
//! compiler's ESW/OoR passes, the functional executor, and the timing
//! simulator all share it.

/// Window geometry for a given SWW capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowModel {
    sww_wires: u32,
    half: u32,
}

impl WindowModel {
    /// Creates a model for an SWW holding `sww_wires` wire labels.
    ///
    /// # Panics
    ///
    /// Panics if `sww_wires < 2` (the window must be splittable in half).
    pub fn new(sww_wires: u32) -> WindowModel {
        assert!(sww_wires >= 2, "SWW must hold at least 2 wires");
        WindowModel { sww_wires, half: sww_wires / 2 }
    }

    /// Creates a model from an SWW byte capacity (16 B per wire label).
    pub fn from_bytes(sww_bytes: usize) -> WindowModel {
        WindowModel::new((sww_bytes / 16).max(2) as u32)
    }

    /// Number of wire labels the SWW holds.
    #[inline]
    pub fn sww_wires(&self) -> u32 {
        self.sww_wires
    }

    /// The slide granularity (half the capacity).
    #[inline]
    pub fn half(&self) -> u32 {
        self.half
    }

    /// The window base when the output frontier is at `frontier` (the
    /// address currently being written). The window is `[base,
    /// base + sww_wires)` and bases advance in half-window steps.
    #[inline]
    pub fn base_for_frontier(&self, frontier: u32) -> u32 {
        if frontier < self.sww_wires {
            0
        } else {
            // Smallest multiple of `half` with frontier < base + n.
            let over = frontier - self.sww_wires + 1;
            over.div_ceil(self.half) * self.half
        }
    }

    /// Whether reading `addr` hits the SWW when the frontier is at
    /// `frontier` (reads never exceed the frontier in a renamed program).
    #[inline]
    pub fn in_window(&self, addr: u32, frontier: u32) -> bool {
        addr >= self.base_for_frontier(frontier)
    }

    /// The physical SWW slot an address maps to (no tags — the window
    /// contract guarantees non-interference).
    #[inline]
    pub fn slot(&self, addr: u32) -> u32 {
        addr % self.sww_wires
    }

    /// Gates a multi-engine garbler may consider for out-of-order issue
    /// at once. HAAC's parallel gate engines only draw work from inside
    /// the sliding wire window (every operand of an in-flight gate must
    /// be SWW-resident, §3.2), so the software engines'
    /// `EngineConfig::lookahead` is bounded the same way: one gate per
    /// resident wire.
    #[inline]
    pub fn gate_lookahead(&self) -> usize {
        self.sww_wires as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_starts_at_zero() {
        let w = WindowModel::new(8);
        for frontier in 0..8 {
            assert_eq!(w.base_for_frontier(frontier), 0, "frontier {frontier}");
        }
    }

    #[test]
    fn window_slides_in_half_steps() {
        let w = WindowModel::new(8);
        // frontier 8 exceeds [0,8): base moves to 4.
        assert_eq!(w.base_for_frontier(8), 4);
        assert_eq!(w.base_for_frontier(11), 4);
        // frontier 12 exceeds [4,12): base moves to 8.
        assert_eq!(w.base_for_frontier(12), 8);
        assert_eq!(w.base_for_frontier(100), 96); // smallest base with 100 < base+8
    }

    #[test]
    fn frontier_always_in_window() {
        let w = WindowModel::new(16);
        for frontier in 0..200 {
            let base = w.base_for_frontier(frontier);
            assert!(frontier >= base, "frontier {frontier} below base {base}");
            assert!(frontier < base + 16, "frontier {frontier} above window");
            assert_eq!(base % 8, 0, "base aligned to half-window");
        }
    }

    #[test]
    fn in_window_respects_base() {
        let w = WindowModel::new(8);
        assert!(w.in_window(7, 9)); // base 4
        assert!(w.in_window(4, 9));
        assert!(!w.in_window(3, 9));
    }

    #[test]
    fn bases_are_monotonic() {
        let w = WindowModel::new(32);
        let mut prev = 0;
        for frontier in 0..1000 {
            let base = w.base_for_frontier(frontier);
            assert!(base >= prev);
            prev = base;
        }
    }

    #[test]
    fn from_bytes_uses_16_byte_labels() {
        assert_eq!(WindowModel::from_bytes(2 * 1024 * 1024).sww_wires(), 131_072);
        assert_eq!(WindowModel::from_bytes(2 * 1024 * 1024).half(), 65_536);
    }

    #[test]
    fn slots_wrap() {
        let w = WindowModel::new(8);
        assert_eq!(w.slot(3), 3);
        assert_eq!(w.slot(11), 3);
    }

    #[test]
    fn gate_lookahead_tracks_window_capacity() {
        assert_eq!(WindowModel::new(16).gate_lookahead(), 16);
        assert_eq!(WindowModel::from_bytes(2 * 1024 * 1024).gate_lookahead(), 131_072);
    }
}
