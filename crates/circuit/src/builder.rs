//! High-level circuit construction (the EMP-toolkit frontend equivalent).
//!
//! [`Builder`] assembles [`Circuit`]s gate by gate while performing the
//! constant folding and common-subexpression elimination a GC synthesis
//! frontend performs: AND/XOR with constants fold away, double negations
//! cancel, and `x ⊕ x` collapses — so public constants (loop bounds,
//! masks, coefficients) never cost gates.
//!
//! Bits are represented by [`Bit`], which is either a public constant or a
//! circuit wire; multi-bit words are `Vec<Bit>` in little-endian order
//! (see the word-level ops in [`crate::word`]).

use std::collections::HashMap;

use crate::ir::{Circuit, CircuitError, Gate, GateOp, WireId};

/// A single Boolean value during circuit construction: either a public
/// compile-time constant or a secret wire.
///
/// Public constants fold: no gate is emitted for `AND`/`XOR`/`NOT`
/// involving only constants, and mixed operations simplify (e.g.
/// `x AND true = x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bit {
    /// A public constant known at circuit-construction time.
    Const(bool),
    /// A secret value carried on a circuit wire.
    Wire(WireId),
}

impl Bit {
    /// Constant `false`.
    pub const FALSE: Bit = Bit::Const(false);
    /// Constant `true`.
    pub const TRUE: Bit = Bit::Const(true);

    /// Returns the constant value if this bit is public.
    #[inline]
    pub fn as_const(self) -> Option<bool> {
        match self {
            Bit::Const(v) => Some(v),
            Bit::Wire(_) => None,
        }
    }
}

impl From<bool> for Bit {
    fn from(v: bool) -> Self {
        Bit::Const(v)
    }
}

/// Little-endian multi-bit value under construction (`word[0]` is the LSB).
pub type Word = Vec<Bit>;

/// Incremental circuit builder with constant folding.
///
/// Input allocation must precede gate creation; garbler inputs must be
/// allocated before evaluator inputs (primary inputs occupy the lowest
/// wire ids, garbler first, matching the Bristol convention).
///
/// # Examples
///
/// ```
/// use haac_circuit::{Builder, Bit};
///
/// // Millionaires' problem for 4-bit wealth: is Alice richer than Bob?
/// let mut b = Builder::new();
/// let alice = b.input_garbler(4);
/// let bob = b.input_evaluator(4);
/// let alice_richer = b.gt_u(&alice, &bob);
/// let circuit = b.finish(vec![alice_richer]).unwrap();
/// assert_eq!(
///     circuit.eval(&[true, false, false, true], &[false, true, true, false]).unwrap(),
///     vec![true] // 9 > 6
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct Builder {
    gates: Vec<Gate>,
    garbler_inputs: u32,
    evaluator_inputs: u32,
    next_wire: WireId,
    inputs_frozen: bool,
    evaluator_inputs_started: bool,
    not_cache: HashMap<WireId, WireId>,
    const_one: Option<WireId>,
}

impl Builder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Allocates `n` garbler (Alice) input bits.
    ///
    /// # Panics
    ///
    /// Panics if any gate has already been created or if evaluator inputs
    /// have already been allocated (inputs must occupy the lowest wire
    /// ids, garbler first).
    pub fn input_garbler(&mut self, n: u32) -> Word {
        assert!(!self.inputs_frozen, "inputs must be allocated before any gate is created");
        assert!(
            !self.evaluator_inputs_started,
            "garbler inputs must be allocated before evaluator inputs"
        );
        let start = self.next_wire;
        self.garbler_inputs += n;
        self.next_wire += n;
        (start..start + n).map(Bit::Wire).collect()
    }

    /// Allocates `n` evaluator (Bob) input bits.
    ///
    /// # Panics
    ///
    /// Panics if any gate has already been created.
    pub fn input_evaluator(&mut self, n: u32) -> Word {
        assert!(!self.inputs_frozen, "inputs must be allocated before any gate is created");
        self.evaluator_inputs_started = true;
        let start = self.next_wire;
        self.evaluator_inputs += n;
        self.next_wire += n;
        (start..start + n).map(Bit::Wire).collect()
    }

    /// Number of gates emitted so far.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Read-only view of the gates emitted so far.
    ///
    /// Useful for inspecting synthesis quality (e.g. counting ANDs) while
    /// a circuit is still under construction.
    pub fn snapshot_gates(&self) -> &[Gate] {
        &self.gates
    }

    fn emit(&mut self, op: GateOp, a: WireId, b: WireId) -> WireId {
        self.inputs_frozen = true;
        let out = self.next_wire;
        self.next_wire += 1;
        self.gates.push(Gate { a, b, out, op });
        out
    }

    /// Logical AND with constant folding (`x & x = x`).
    pub fn and(&mut self, a: Bit, b: Bit) -> Bit {
        match (a, b) {
            (Bit::Const(x), Bit::Const(y)) => Bit::Const(x & y),
            (Bit::Const(false), _) | (_, Bit::Const(false)) => Bit::FALSE,
            (Bit::Const(true), w) | (w, Bit::Const(true)) => w,
            (Bit::Wire(x), Bit::Wire(y)) if x == y => Bit::Wire(x),
            (Bit::Wire(x), Bit::Wire(y)) => Bit::Wire(self.emit(GateOp::And, x, y)),
        }
    }

    /// Logical XOR with constant folding (`x ^ x = 0`).
    pub fn xor(&mut self, a: Bit, b: Bit) -> Bit {
        match (a, b) {
            (Bit::Const(x), Bit::Const(y)) => Bit::Const(x ^ y),
            (Bit::Const(false), w) | (w, Bit::Const(false)) => w,
            (Bit::Const(true), w) | (w, Bit::Const(true)) => self.not(w),
            (Bit::Wire(x), Bit::Wire(y)) if x == y => Bit::FALSE,
            (Bit::Wire(x), Bit::Wire(y)) => Bit::Wire(self.emit(GateOp::Xor, x, y)),
        }
    }

    /// Logical NOT; double negations are cached and cancel.
    pub fn not(&mut self, a: Bit) -> Bit {
        match a {
            Bit::Const(x) => Bit::Const(!x),
            Bit::Wire(w) => {
                if let Some(&cached) = self.not_cache.get(&w) {
                    return Bit::Wire(cached);
                }
                let out = self.emit(GateOp::Inv, w, w);
                self.not_cache.insert(w, out);
                self.not_cache.insert(out, w);
                Bit::Wire(out)
            }
        }
    }

    /// Logical OR (one AND, two XOR: `a | b = a ⊕ b ⊕ ab`).
    pub fn or(&mut self, a: Bit, b: Bit) -> Bit {
        let ab = self.and(a, b);
        let axb = self.xor(a, b);
        self.xor(axb, ab)
    }

    /// Logical NAND.
    pub fn nand(&mut self, a: Bit, b: Bit) -> Bit {
        let ab = self.and(a, b);
        self.not(ab)
    }

    /// Logical NOR.
    pub fn nor(&mut self, a: Bit, b: Bit) -> Bit {
        let ab = self.or(a, b);
        self.not(ab)
    }

    /// Logical XNOR (equality of two bits).
    pub fn xnor(&mut self, a: Bit, b: Bit) -> Bit {
        let axb = self.xor(a, b);
        self.not(axb)
    }

    /// Two-way multiplexer: returns `if sel { t } else { f }`.
    ///
    /// Costs one AND: `f ⊕ sel·(t ⊕ f)`.
    pub fn mux(&mut self, sel: Bit, t: Bit, f: Bit) -> Bit {
        let txf = self.xor(t, f);
        let gated = self.and(sel, txf);
        self.xor(f, gated)
    }

    /// Single-bit full adder; returns `(sum, carry_out)`.
    ///
    /// Uses the 1-AND construction standard in GC synthesis:
    /// `carry' = c ⊕ ((a⊕c)·(b⊕c))`.
    pub fn full_adder(&mut self, a: Bit, b: Bit, c: Bit) -> (Bit, Bit) {
        let axc = self.xor(a, c);
        let bxc = self.xor(b, c);
        let sum = self.xor(axc, b);
        let t = self.and(axc, bxc);
        let carry = self.xor(c, t);
        (sum, carry)
    }

    /// Materializes a bit as a wire, synthesizing public constants when
    /// needed (`1 = w ⊕ ¬w` for any existing wire `w`).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UndefinedOutput`] if a constant must be
    /// materialized but the circuit has no wires at all.
    pub fn materialize(&mut self, bit: Bit) -> Result<WireId, CircuitError> {
        match bit {
            Bit::Wire(w) => Ok(w),
            Bit::Const(v) => {
                let one = self.materialize_one()?;
                if v {
                    Ok(one)
                } else {
                    match self.not(Bit::Wire(one)) {
                        Bit::Wire(w) => Ok(w),
                        Bit::Const(_) => unreachable!("negating a wire yields a wire"),
                    }
                }
            }
        }
    }

    fn materialize_one(&mut self) -> Result<WireId, CircuitError> {
        if let Some(w) = self.const_one {
            return Ok(w);
        }
        if self.next_wire == 0 {
            // No wires exist to anchor a constant on.
            return Err(CircuitError::UndefinedOutput { wire: 0 });
        }
        let w = Bit::Wire(0);
        let nw = self.not(w);
        let one = self.xor(w, nw);
        match one {
            Bit::Wire(id) => {
                self.const_one = Some(id);
                Ok(id)
            }
            Bit::Const(_) => unreachable!("w ⊕ ¬w over wires always emits a gate"),
        }
    }

    /// Finalizes the circuit with the given output bits (constants are
    /// materialized).
    ///
    /// # Errors
    ///
    /// Returns an error if a constant output cannot be materialized (the
    /// circuit has no wires) or if the assembled circuit fails validation
    /// (the latter indicates a builder bug).
    pub fn finish(mut self, outputs: Vec<Bit>) -> Result<Circuit, CircuitError> {
        let mut output_wires = Vec::with_capacity(outputs.len());
        for bit in outputs {
            output_wires.push(self.materialize(bit)?);
        }
        Circuit::new(self.garbler_inputs, self.evaluator_inputs, self.gates, output_wires)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval1(c: &Circuit, g: &[bool], e: &[bool]) -> bool {
        c.eval(g, e).unwrap()[0]
    }

    #[test]
    fn constant_folding_emits_no_gates() {
        let mut b = Builder::new();
        let x = b.input_garbler(1)[0];
        let t = b.and(x, Bit::TRUE);
        assert_eq!(t, x);
        let f = b.and(x, Bit::FALSE);
        assert_eq!(f, Bit::FALSE);
        let same = b.xor(x, x);
        assert_eq!(same, Bit::FALSE);
        let id = b.xor(x, Bit::FALSE);
        assert_eq!(id, x);
        assert_eq!(b.num_gates(), 0);
    }

    #[test]
    fn double_negation_cancels() {
        let mut b = Builder::new();
        let x = b.input_garbler(1)[0];
        let nx = b.not(x);
        let nnx = b.not(nx);
        assert_eq!(nnx, x);
        assert_eq!(b.num_gates(), 1);
    }

    #[test]
    fn mux_truth_table() {
        for (s, t, f) in
            [(false, false, true), (false, true, false), (true, false, true), (true, true, false)]
        {
            let mut b = Builder::new();
            let sel = b.input_garbler(1)[0];
            let inputs = b.input_evaluator(2);
            let out = b.mux(sel, inputs[0], inputs[1]);
            let c = b.finish(vec![out]).unwrap();
            assert_eq!(eval1(&c, &[s], &[t, f]), if s { t } else { f });
        }
    }

    #[test]
    fn or_and_friends() {
        for a in [false, true] {
            for b_val in [false, true] {
                let mut b = Builder::new();
                let x = b.input_garbler(1)[0];
                let y = b.input_evaluator(1)[0];
                let or = b.or(x, y);
                let nand = b.nand(x, y);
                let nor = b.nor(x, y);
                let xnor = b.xnor(x, y);
                let c = b.finish(vec![or, nand, nor, xnor]).unwrap();
                let out = c.eval(&[a], &[b_val]).unwrap();
                assert_eq!(out, vec![a | b_val, !(a & b_val), !(a | b_val), a == b_val]);
            }
        }
    }

    #[test]
    fn full_adder_exhaustive() {
        for bits in 0..8u32 {
            let (a, b_in, c_in) = ((bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0);
            let mut b = Builder::new();
            let inputs = b.input_garbler(3);
            let (s, c) = b.full_adder(inputs[0], inputs[1], inputs[2]);
            let circuit = b.finish(vec![s, c]).unwrap();
            let out = circuit.eval(&[a, b_in, c_in], &[]).unwrap();
            let total = a as u8 + b_in as u8 + c_in as u8;
            assert_eq!(out, vec![total & 1 == 1, total >= 2]);
        }
    }

    #[test]
    fn full_adder_uses_one_and() {
        let mut b = Builder::new();
        let inputs = b.input_garbler(3);
        let _ = b.full_adder(inputs[0], inputs[1], inputs[2]);
        let ands = b.gates.iter().filter(|g| g.op == GateOp::And).count();
        assert_eq!(ands, 1);
    }

    #[test]
    fn constant_outputs_materialize() {
        let mut b = Builder::new();
        let _x = b.input_garbler(1);
        let c = b.finish(vec![Bit::TRUE, Bit::FALSE]).unwrap();
        assert_eq!(c.eval(&[false], &[]).unwrap(), vec![true, false]);
        assert_eq!(c.eval(&[true], &[]).unwrap(), vec![true, false]);
    }

    #[test]
    fn constant_output_without_wires_errors() {
        let b = Builder::new();
        assert!(b.finish(vec![Bit::TRUE]).is_err());
    }

    #[test]
    #[should_panic(expected = "inputs must be allocated before any gate")]
    fn inputs_after_gates_panic() {
        let mut b = Builder::new();
        let x = b.input_garbler(2);
        let _ = b.and(x[0], x[1]);
        let _ = b.input_garbler(1);
    }

    #[test]
    #[should_panic(expected = "garbler inputs must be allocated before evaluator")]
    fn garbler_after_evaluator_panics() {
        let mut b = Builder::new();
        let _ = b.input_evaluator(1);
        let _ = b.input_garbler(1);
    }
}
