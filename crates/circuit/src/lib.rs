//! # haac-circuit — Boolean circuit substrate for the HAAC reproduction
//!
//! This crate is the frontend substrate of the HAAC system (Mo, Gopinath
//! & Reagen, *HAAC: A Hardware-Software Co-Design to Accelerate Garbled
//! Circuits*, ISCA 2023): everything the paper obtains from the EMP
//! toolkit — netlists, synthesis, characterization — rebuilt in Rust.
//!
//! - [`Circuit`]: topologically ordered AND/XOR/INV netlists in SSA form,
//!   with plaintext evaluation as the reference semantics.
//! - [`Builder`]: a constant-folding synthesis frontend with word-level
//!   operations (adders, comparators, multipliers, dividers, barrel
//!   shifters, popcounts — see the word-level ops in `word.rs`) and FP32 arithmetic ([`float`]).
//! - [`bristol`]: the Bristol netlist interchange format EMP emits.
//! - [`aes_circuit`] / [`galois`]: a from-first-principles compact AES-128
//!   circuit via a composite-field S-box.
//! - [`stats`]: the Table 2 characterization metrics (levels, ILP, AND%).
//!
//! # Examples
//!
//! ```
//! use haac_circuit::{Builder, stats::CircuitStats};
//!
//! // A 16-bit private adder: Alice's x plus Bob's y.
//! let mut b = Builder::new();
//! let x = b.input_garbler(16);
//! let y = b.input_evaluator(16);
//! let (sum, _carry) = b.add_words(&x, &y);
//! let circuit = b.finish(sum)?;
//!
//! let stats = CircuitStats::of(&circuit);
//! assert_eq!(stats.and_gates, 16); // one AND per full adder
//! # Ok::<(), haac_circuit::CircuitError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aes_circuit;
pub mod bristol;
mod builder;
pub mod float;
pub mod galois;
mod ir;
pub mod opt;
pub mod stats;
mod word;

pub use builder::{Bit, Builder, Word};
pub use ir::{Circuit, CircuitError, Gate, GateOp, WireId};

/// Converts an integer to a little-endian bit vector of the given width.
///
/// # Examples
///
/// ```
/// assert_eq!(haac_circuit::to_bits(5, 4), vec![true, false, true, false]);
/// ```
pub fn to_bits(value: u64, width: u32) -> Vec<bool> {
    (0..width).map(|i| i < 64 && (value >> i) & 1 == 1).collect()
}

/// Converts a little-endian bit slice back to an integer (lowest 64 bits).
///
/// # Examples
///
/// ```
/// assert_eq!(haac_circuit::from_bits(&[true, false, true, false]), 5);
/// ```
pub fn from_bits(bits: &[bool]) -> u64 {
    bits.iter().take(64).enumerate().fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_conversions_roundtrip() {
        for v in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(from_bits(&to_bits(v, 64)), v);
        }
    }

    #[test]
    fn to_bits_truncates_to_width() {
        assert_eq!(to_bits(0xFF, 4), vec![true; 4]);
        assert_eq!(from_bits(&to_bits(0xFF, 4)), 0xF);
    }
}
