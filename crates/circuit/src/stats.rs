//! Circuit characterization, reproducing the metrics of Table 2.
//!
//! The paper characterizes each VIP-Bench workload by circuit depth
//! (`# Levels`), wire and gate counts, the AND-gate percentage (only ANDs
//! cost garbled tables), and `ILP` — the average number of independent
//! gates per dependence level, i.e. `gates / levels`.

use crate::ir::Circuit;

/// Summary statistics of a circuit, as reported in the paper's Table 2.
///
/// # Examples
///
/// ```
/// use haac_circuit::{Builder, stats::CircuitStats};
///
/// let mut b = haac_circuit::Builder::new();
/// let x = b.input_garbler(8);
/// let y = b.input_evaluator(8);
/// let (sum, _) = b.add_words(&x, &y);
/// let c = b.finish(sum).unwrap();
/// let stats = CircuitStats::of(&c);
/// assert!(stats.and_percent > 0.0);
/// assert_eq!(stats.gates, c.num_gates());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitStats {
    /// Circuit depth: number of dependence levels (`# Levels`).
    pub levels: u32,
    /// Total wires (inputs + gate outputs) (`# Wires`).
    pub wires: u64,
    /// Total gates (`# Gates`).
    pub gates: usize,
    /// AND gates as a percentage of all gates (`AND %`).
    pub and_percent: f64,
    /// Average gates per level (`ILP`), the paper's parallelism proxy.
    pub ilp: f64,
    /// Number of AND gates (each requiring a garbled table).
    pub and_gates: usize,
    /// Number of XOR gates (free under FreeXOR).
    pub xor_gates: usize,
    /// Number of INV gates (free relabelings).
    pub inv_gates: usize,
}

impl CircuitStats {
    /// Computes the statistics of a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let mut and_gates = 0usize;
        let mut xor_gates = 0usize;
        let mut inv_gates = 0usize;
        for gate in circuit.gates() {
            match gate.op {
                crate::GateOp::And => and_gates += 1,
                crate::GateOp::Xor => xor_gates += 1,
                crate::GateOp::Inv => inv_gates += 1,
            }
        }
        let gates = circuit.num_gates();
        let levels = circuit.depth();
        CircuitStats {
            levels,
            wires: circuit.num_wires() as u64,
            gates,
            and_percent: if gates == 0 { 0.0 } else { 100.0 * and_gates as f64 / gates as f64 },
            ilp: if levels == 0 { 0.0 } else { gates as f64 / levels as f64 },
            and_gates,
            xor_gates,
            inv_gates,
        }
    }

    /// Gates per level histogram: `result[l]` is the number of gates whose
    /// output sits at dependence level `l + 1`.
    ///
    /// Useful for understanding why full reordering floods the SWW on
    /// wide circuits (paper §4.2.1).
    pub fn level_widths(circuit: &Circuit) -> Vec<u32> {
        let levels = circuit.wire_levels();
        let depth = levels.iter().copied().max().unwrap_or(0) as usize;
        let mut widths = vec![0u32; depth];
        for gate in circuit.gates() {
            let l = levels[gate.out as usize] as usize;
            widths[l - 1] += 1;
        }
        widths
    }
}

impl std::fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "levels={} wires={} gates={} and%={:.2} ilp={:.0}",
            self.levels, self.wires, self.gates, self.and_percent, self.ilp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Circuit, Gate, GateOp};

    #[test]
    fn stats_of_small_circuit() {
        let c = Circuit::new(
            1,
            1,
            vec![Gate::new(GateOp::Xor, 0, 1, 2), Gate::new(GateOp::And, 2, 0, 3), Gate::inv(3, 4)],
            vec![4],
        )
        .unwrap();
        let s = CircuitStats::of(&c);
        assert_eq!(s.levels, 3);
        assert_eq!(s.gates, 3);
        assert_eq!(s.wires, 5);
        assert_eq!(s.and_gates, 1);
        assert_eq!(s.xor_gates, 1);
        assert_eq!(s.inv_gates, 1);
        assert!((s.and_percent - 100.0 / 3.0).abs() < 1e-9);
        assert!((s.ilp - 1.0).abs() < 1e-9);
    }

    #[test]
    fn level_widths_sum_to_gate_count() {
        let c = Circuit::new(
            2,
            0,
            vec![
                Gate::new(GateOp::Xor, 0, 1, 2),
                Gate::new(GateOp::And, 0, 1, 3),
                Gate::new(GateOp::And, 2, 3, 4),
            ],
            vec![4],
        )
        .unwrap();
        let widths = CircuitStats::level_widths(&c);
        assert_eq!(widths, vec![2, 1]);
        assert_eq!(widths.iter().sum::<u32>() as usize, c.num_gates());
    }

    #[test]
    fn empty_circuit_stats() {
        let c = Circuit::new(1, 0, vec![], vec![0]).unwrap();
        let s = CircuitStats::of(&c);
        assert_eq!(s.levels, 0);
        assert_eq!(s.ilp, 0.0);
        assert_eq!(s.and_percent, 0.0);
    }
}
