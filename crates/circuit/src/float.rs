//! IEEE-754 binary32 arithmetic as Boolean circuits.
//!
//! VIP-Bench's Gradient-Descent workload uses "true floating point
//! arithmetic" (paper §5), which is what makes it the deepest, least
//! parallel benchmark in Table 2. This module synthesizes FP32 add/mul
//! with the following documented simplifications (recorded in DESIGN.md):
//!
//! - subnormals are flushed to zero (an `exp == 0` operand is zero);
//! - no NaN/Infinity handling — overflow saturates to `exp = 255,
//!   mantissa = 0`, underflow flushes to `+0`;
//! - rounding is truncation (round toward zero).
//!
//! The *exact* same semantics are implemented in software by
//! [`fp32_add_ref`] / [`fp32_mul_ref`], which serve as the plaintext
//! reference for tests and for the GradDesc plaintext baseline; circuit
//! and reference agree bit-for-bit.

use crate::builder::{Bit, Builder, Word};

/// Width of an FP32 word in circuit form.
pub const FP32_BITS: u32 = 32;

/// Software reference for circuit FP32 multiplication (see module docs
/// for the exact semantics).
///
/// # Examples
///
/// ```
/// use haac_circuit::float::fp32_mul_ref;
/// let a = 1.5f32.to_bits();
/// let b = 2.0f32.to_bits();
/// assert_eq!(f32::from_bits(fp32_mul_ref(a, b)), 3.0);
/// ```
pub fn fp32_mul_ref(a: u32, b: u32) -> u32 {
    let (sa, ea, ma) = split(a);
    let (sb, eb, mb) = split(b);
    if ea == 0 || eb == 0 {
        return 0;
    }
    let sign = sa ^ sb;
    let p = (u64::from(ma) | (1 << 23)) * (u64::from(mb) | (1 << 23)); // 48 bits
    let norm = (p >> 47) & 1;
    let frac = if norm == 1 { (p >> 24) & 0x7f_ffff } else { (p >> 23) & 0x7f_ffff } as u32;
    let e = ea + eb + norm as u32; // true exponent + 127
    if e <= 127 {
        return 0;
    }
    if e >= 127 + 255 {
        return (sign << 31) | (255 << 23);
    }
    (sign << 31) | ((e - 127) << 23) | frac
}

/// Software reference for circuit FP32 addition (see module docs for the
/// exact semantics).
///
/// # Examples
///
/// ```
/// use haac_circuit::float::fp32_add_ref;
/// let a = 0.5f32.to_bits();
/// let b = 0.25f32.to_bits();
/// assert_eq!(f32::from_bits(fp32_add_ref(a, b)), 0.75);
/// ```
pub fn fp32_add_ref(a: u32, b: u32) -> u32 {
    let (mut a, mut b) = (a, b);
    if (a & 0x7fff_ffff) < (b & 0x7fff_ffff) {
        core::mem::swap(&mut a, &mut b);
    }
    let (sa, ea, ma) = split(a);
    let (_sb, eb, mb) = split(b);
    let a_zero = ea == 0;
    let b_zero = eb == 0;
    if b_zero {
        return if a_zero { 0 } else { a };
    }
    let d = ea - eb;
    let big = (u64::from(ma) | (1 << 23)) << 3; // 27 bits, 3 guard bits
    let small = (u64::from(mb) | (1 << 23)) << 3;
    let small_shifted = if d >= 64 { 0 } else { small >> d };
    let same_sign = (a >> 31) == (b >> 31);
    let s = if same_sign { big + small_shifted } else { big - small_shifted }; // ≤ 28 bits
    if s == 0 {
        return 0;
    }
    if (s >> 27) & 1 == 1 {
        // Carry-out of the 27-bit frame: renormalize right by one.
        let frac = ((s >> 4) & 0x7f_ffff) as u32;
        let e = ea + 1;
        if e >= 255 {
            return (sa << 31) | (255 << 23);
        }
        return (sa << 31) | (e << 23) | frac;
    }
    // Normalize left: hidden bit belongs at position 26.
    let lz = 26 - (63 - s.leading_zeros());
    let n = s << lz;
    let frac = ((n >> 3) & 0x7f_ffff) as u32;
    let e = ea as i64 - i64::from(lz);
    if e <= 0 {
        return 0;
    }
    (sa << 31) | ((e as u32) << 23) | frac
}

/// Software reference for circuit FP32 subtraction.
pub fn fp32_sub_ref(a: u32, b: u32) -> u32 {
    fp32_add_ref(a, b ^ (1 << 31))
}

/// Flushes a host float to the representable domain of the reference
/// semantics (subnormals become zero).
pub fn fp32_canon(x: f32) -> u32 {
    let bits = x.to_bits();
    if (bits >> 23) & 0xff == 0 {
        0
    } else {
        bits
    }
}

fn split(x: u32) -> (u32, u32, u32) {
    (x >> 31, (x >> 23) & 0xff, x & 0x7f_ffff)
}

impl Builder {
    /// A public FP32 constant as 32 circuit bits (subnormals flushed).
    pub fn fp_const(&self, value: f32) -> Word {
        self.const_word(u64::from(fp32_canon(value)), FP32_BITS)
    }

    /// FP32 negation (sign-bit flip; free).
    pub fn fp_neg(&mut self, x: &[Bit]) -> Word {
        assert_eq!(x.len(), 32, "fp_neg expects 32 bits");
        let mut out = x.to_vec();
        out[31] = self.not(out[31]);
        out
    }

    /// FP32 multiplication circuit (≈ 700 ANDs); bit-exact with
    /// [`fp32_mul_ref`].
    ///
    /// # Panics
    ///
    /// Panics if either input is not 32 bits wide.
    pub fn fp_mul(&mut self, x: &[Bit], y: &[Bit]) -> Word {
        assert_eq!(x.len(), 32, "fp_mul expects 32 bits");
        assert_eq!(y.len(), 32, "fp_mul expects 32 bits");
        let (sx, ex, mx) = (x[31], &x[23..31], &x[0..23]);
        let (sy, ey, my) = (y[31], &y[23..31], &y[0..23]);
        let zero8 = self.const_word(0, 8);
        let x_zero = self.eq_words(ex, &zero8);
        let y_zero = self.eq_words(ey, &zero8);
        let sign = self.xor(sx, sy);

        // 24×24 product with implicit leading ones.
        let mut ma: Word = mx.to_vec();
        ma.push(Bit::TRUE);
        let mut mb: Word = my.to_vec();
        mb.push(Bit::TRUE);
        let p = self.mul_words(&ma, &mb); // 48 bits
        let norm = p[47];
        let frac = self.mux_word(norm, &p[24..47], &p[23..46]);

        // e = ex + ey + norm, 9 bits (max 511).
        let mut ex9: Word = ex.to_vec();
        ex9.push(Bit::FALSE);
        let mut ey9: Word = ey.to_vec();
        ey9.push(Bit::FALSE);
        let (e_sum, _) = self.add_words(&ex9, &ey9);
        let norm9 = {
            let mut w = vec![Bit::FALSE; 9];
            w[0] = norm;
            w
        };
        let (e, _) = self.add_words(&e_sum, &norm9);

        let c127 = self.const_word(127, 9);
        let c382 = self.const_word(382, 9);
        let underflow = self.le_u(&e, &c127);
        let overflow = self.ge_u(&e, &c382);
        let (e_unb, _) = self.sub_words(&e, &c127);

        let mut result: Word = frac;
        result.extend_from_slice(&e_unb[0..8]);
        result.push(sign);

        // Saturate, then zero-flush (outermost wins, matching the ref).
        let mut saturated = self.const_word(0, 23);
        saturated.extend(self.const_word(0xff, 8));
        saturated.push(sign);
        let result = self.mux_word(overflow, &saturated, &result);
        let zero32 = self.const_word(0, 32);
        let result = self.mux_word(underflow, &zero32, &result);
        let any_zero = self.or(x_zero, y_zero);
        self.mux_word(any_zero, &zero32, &result)
    }

    /// FP32 addition circuit (≈ 500 ANDs); bit-exact with
    /// [`fp32_add_ref`].
    ///
    /// # Panics
    ///
    /// Panics if either input is not 32 bits wide.
    pub fn fp_add(&mut self, x: &[Bit], y: &[Bit]) -> Word {
        assert_eq!(x.len(), 32, "fp_add expects 32 bits");
        assert_eq!(y.len(), 32, "fp_add expects 32 bits");
        // Order by magnitude: |a| >= |b|. Magnitude compare is integer
        // compare of the low 31 bits.
        let swap = self.lt_u(&x[0..31], &y[0..31]);
        let a = self.mux_word(swap, y, x);
        let b = self.mux_word(swap, x, y);
        let (sa, ea, ma) = (a[31], a[23..31].to_vec(), a[0..23].to_vec());
        let (sb, eb, mb) = (b[31], b[23..31].to_vec(), b[0..23].to_vec());
        let zero8 = self.const_word(0, 8);
        let a_zero = self.eq_words(&ea, &zero8);
        let b_zero = self.eq_words(&eb, &zero8);

        let (d, _) = self.sub_words(&ea, &eb); // >= 0 by the swap

        // 27-bit frames with 3 guard bits; hidden one at bit 26.
        let mut big = vec![Bit::FALSE; 3];
        big.extend_from_slice(&ma);
        big.push(Bit::TRUE);
        let mut small = vec![Bit::FALSE; 3];
        small.extend_from_slice(&mb);
        small.push(Bit::TRUE);
        let small_shifted = self.shr_var(&small, &d);

        let same_sign = self.xnor(sa, sb);
        let (sum, carry) = self.add_words(&big, &small_shifted);
        let (diff, _) = self.sub_words(&big, &small_shifted); // >= 0 by the swap
        let mut s_add = sum;
        s_add.push(carry);
        let mut s_sub = diff;
        s_sub.push(Bit::FALSE);
        let s = self.mux_word(same_sign, &s_add, &s_sub); // 28 bits

        // Path A: carry-out — renormalize right by one.
        let overflow_frame = s[27];
        let frac_a: Word = s[4..27].to_vec();
        let mut ea9: Word = ea.clone();
        ea9.push(Bit::FALSE);
        let one9 = self.const_word(1, 9);
        let (e_a, _) = self.add_words(&ea9, &one9);
        let c255 = self.const_word(255, 9);
        let sat_a = self.ge_u(&e_a, &c255);

        // Path B: normalize left using the leading-zero count of s[0..27].
        let (lz, s_zero) = self.leading_zeros(&s[0..27]);
        let n = self.shl_var(&s[0..27], &lz);
        let frac_b: Word = n[3..26].to_vec();
        let mut lz9 = lz.clone();
        lz9.resize(9, Bit::FALSE);
        let (e_b, neg) = self.sub_words(&ea9, &lz9);
        let zero9 = self.const_word(0, 9);
        let e_b_zero = self.eq_words(&e_b, &zero9);
        let under_b = self.or(neg, e_b_zero);

        // Select path, assemble, then apply the zero/identity muxes in
        // the same priority order as the reference.
        let frac = self.mux_word(overflow_frame, &frac_a, &frac_b);
        let e9 = self.mux_word(overflow_frame, &e_a, &e_b);
        let mut result: Word = frac;
        result.extend_from_slice(&e9[0..8]);
        result.push(sa);

        let mut saturated = self.const_word(0, 23);
        saturated.extend(self.const_word(0xff, 8));
        saturated.push(sa);
        let sat_sel = self.and(overflow_frame, sat_a);
        let result = self.mux_word(sat_sel, &saturated, &result);

        let zero32 = self.const_word(0, 32);
        let not_over = self.not(overflow_frame);
        let under_sel = self.and(not_over, under_b);
        let result = self.mux_word(under_sel, &zero32, &result);
        // `s == 0` must consider all 28 bits: the LZC only saw s[0..27].
        let s_zero_full = self.and(s_zero, not_over);
        let result = self.mux_word(s_zero_full, &zero32, &result);
        let result = self.mux_word(b_zero, &a, &result);
        self.mux_word(a_zero, &zero32, &result)
    }

    /// FP32 subtraction circuit: `x - y` via sign-flip + add.
    pub fn fp_sub(&mut self, x: &[Bit], y: &[Bit]) -> Word {
        let ny = self.fp_neg(y);
        self.fp_add(x, &ny)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_binop(x: u32, y: u32, f: impl Fn(&mut Builder, &[Bit], &[Bit]) -> Word) -> u32 {
        let mut b = Builder::new();
        let xs = b.input_garbler(32);
        let ys = b.input_evaluator(32);
        let out = f(&mut b, &xs, &ys);
        let c = b.finish(out).unwrap();
        let to_bits = |v: u32| (0..32).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>();
        let out = c.eval(&to_bits(x), &to_bits(y)).unwrap();
        out.iter().enumerate().fold(0u32, |acc, (i, &bit)| acc | ((bit as u32) << i))
    }

    const SAMPLES: &[f32] = &[
        0.0,
        1.0,
        -1.0,
        0.5,
        -0.5,
        2.0,
        3.25,
        -3.25,
        100.75,
        -0.015625,
        1234.5678,
        -9999.25,
        0.000_030_517_578,
        3.4e37,
        -3.4e37,
        1.1754944e-38,
        7.0e-39,
        0.1,
        -0.3,
    ];

    #[test]
    fn mul_ref_matches_host_on_exact_cases() {
        // Products of dyadic values are exact: ref == host.
        for &(a, b) in &[(1.5f32, 2.0f32), (0.5, 0.5), (-4.0, 0.25), (3.0, 7.0), (0.0, 5.0)] {
            let got = fp32_mul_ref(a.to_bits(), b.to_bits());
            assert_eq!(f32::from_bits(got), a * b, "{a} * {b}");
        }
    }

    #[test]
    fn add_ref_matches_host_on_exact_cases() {
        for &(a, b) in &[
            (1.5f32, 2.0f32),
            (0.5, 0.25),
            (-4.0, 0.25),
            (3.0, -3.0),
            (0.0, 5.0),
            (-0.0, 0.0),
            (1048576.0, 0.5),
        ] {
            let got = fp32_add_ref(a.to_bits(), b.to_bits());
            assert_eq!(f32::from_bits(got), a + b, "{a} + {b}");
        }
    }

    #[test]
    fn ref_truncation_is_close_to_host() {
        for &a in SAMPLES {
            for &b in SAMPLES {
                let got = f32::from_bits(fp32_mul_ref(fp32_canon(a), fp32_canon(b)));
                let expect = a * b;
                if expect.is_finite() && expect.abs() > 1e-35 && got != 0.0 {
                    let rel = ((got - expect) / expect).abs();
                    assert!(rel < 1e-6, "{a} * {b}: got {got}, expect {expect}");
                }
                let got = f32::from_bits(fp32_add_ref(fp32_canon(a), fp32_canon(b)));
                let expect = a + b;
                if expect.is_finite() && expect.abs() > 1e-30 && got != 0.0 {
                    let rel = ((got - expect) / expect).abs();
                    assert!(rel < 1e-5, "{a} + {b}: got {got}, expect {expect}");
                }
            }
        }
    }

    #[test]
    fn mul_circuit_matches_ref() {
        for &a in SAMPLES {
            for &b in SAMPLES {
                let (ab, bb) = (fp32_canon(a), fp32_canon(b));
                let got = eval_binop(ab, bb, |bu, x, y| bu.fp_mul(x, y));
                assert_eq!(got, fp32_mul_ref(ab, bb), "{a} * {b}");
            }
        }
    }

    #[test]
    fn add_circuit_matches_ref() {
        for &a in SAMPLES {
            for &b in SAMPLES {
                let (ab, bb) = (fp32_canon(a), fp32_canon(b));
                let got = eval_binop(ab, bb, |bu, x, y| bu.fp_add(x, y));
                assert_eq!(got, fp32_add_ref(ab, bb), "{a} + {b}");
            }
        }
    }

    #[test]
    fn sub_circuit_matches_ref() {
        for &(a, b) in &[(5.5f32, 2.25f32), (1.0, 1.0), (-3.5, 2.0), (0.0, 7.0)] {
            let (ab, bb) = (fp32_canon(a), fp32_canon(b));
            let got = eval_binop(ab, bb, |bu, x, y| bu.fp_sub(x, y));
            assert_eq!(got, fp32_sub_ref(ab, bb), "{a} - {b}");
        }
    }

    #[test]
    fn saturation_and_flush() {
        let big = 3.0e38f32;
        let got = fp32_mul_ref(big.to_bits(), big.to_bits());
        assert_eq!(got >> 23, 255, "overflow saturates");
        let tiny = 1.2e-38f32;
        assert_eq!(fp32_mul_ref(tiny.to_bits(), tiny.to_bits()), 0, "underflow flushes");
    }

    #[test]
    fn neg_flips_sign_only() {
        let got = eval_binop(1.5f32.to_bits(), 0, |b, x, _| b.fp_neg(x));
        assert_eq!(f32::from_bits(got), -1.5);
    }
}
