//! Boolean circuit intermediate representation.
//!
//! A [`Circuit`] is a flat, topologically ordered list of [`Gate`]s over a
//! single-static-assignment wire space: wires `0..num_inputs()` are primary
//! inputs (garbler inputs first, then evaluator inputs) and every gate
//! writes one fresh wire. This mirrors the netlists the EMP toolkit emits
//! in Bristol format, which are the input to the HAAC assembler (paper §4).

use std::fmt;

/// Identifier of a wire in a circuit's SSA wire space.
///
/// Wires `0..num_inputs` are primary inputs; every other wire is written by
/// exactly one gate.
pub type WireId = u32;

/// The Boolean operation computed by a [`Gate`].
///
/// Garbled-circuit backends treat these very differently: `Xor` and `Inv`
/// are *free* under FreeXOR (no table, no AES), while `And` requires a
/// half-gate (two table rows, four AES hashes to garble).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateOp {
    /// Logical AND — garbled with the half-gate construction.
    And,
    /// Logical XOR — free under FreeXOR.
    Xor,
    /// Logical NOT — free (a label relabeling); unary, uses input `a` only.
    Inv,
}

impl fmt::Display for GateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateOp::And => f.write_str("AND"),
            GateOp::Xor => f.write_str("XOR"),
            GateOp::Inv => f.write_str("INV"),
        }
    }
}

/// One Boolean gate: `out = op(a, b)`.
///
/// For unary [`GateOp::Inv`], `b` is conventionally equal to `a` and is
/// ignored by evaluators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gate {
    /// First input wire.
    pub a: WireId,
    /// Second input wire (ignored for `Inv`).
    pub b: WireId,
    /// Output wire; unique per gate (SSA).
    pub out: WireId,
    /// The Boolean operation.
    pub op: GateOp,
}

impl Gate {
    /// Creates a binary gate.
    #[inline]
    pub fn new(op: GateOp, a: WireId, b: WireId, out: WireId) -> Self {
        Gate { a, b, out, op }
    }

    /// Creates an inverter gate.
    #[inline]
    pub fn inv(a: WireId, out: WireId) -> Self {
        Gate { a, b: a, out, op: GateOp::Inv }
    }

    /// Returns `true` if this gate is an AND (i.e. costs a garbled table).
    #[inline]
    pub fn is_and(&self) -> bool {
        self.op == GateOp::And
    }
}

/// Errors produced when validating or constructing a [`Circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate reads a wire that has not been written yet (or is out of range).
    UseBeforeDef {
        /// Index of the offending gate in the gate list.
        gate_index: usize,
        /// The wire that was read too early.
        wire: WireId,
    },
    /// Two gates (or a gate and a primary input) write the same wire.
    MultipleAssignment {
        /// Index of the offending gate in the gate list.
        gate_index: usize,
        /// The wire written more than once.
        wire: WireId,
    },
    /// An output refers to a wire that is never written.
    UndefinedOutput {
        /// The undefined output wire.
        wire: WireId,
    },
    /// The declared wire count is inconsistent with the gate list.
    WireCountMismatch {
        /// Declared number of wires.
        declared: u32,
        /// Number of wires actually required.
        required: u32,
    },
    /// The provided input bit-vector had the wrong length.
    InputLength {
        /// Which party's input was wrong ("garbler" or "evaluator").
        party: &'static str,
        /// Expected number of bits.
        expected: usize,
        /// Provided number of bits.
        got: usize,
    },
    /// A netlist file could not be parsed.
    Parse {
        /// Line number (1-based) where parsing failed.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UseBeforeDef { gate_index, wire } => {
                write!(f, "gate {gate_index} reads wire {wire} before it is defined")
            }
            CircuitError::MultipleAssignment { gate_index, wire } => {
                write!(f, "gate {gate_index} writes wire {wire} which is already defined")
            }
            CircuitError::UndefinedOutput { wire } => {
                write!(f, "output wire {wire} is never defined")
            }
            CircuitError::WireCountMismatch { declared, required } => {
                write!(f, "declared {declared} wires but the netlist requires {required}")
            }
            CircuitError::InputLength { party, expected, got } => {
                write!(f, "{party} input has {got} bits, expected {expected}")
            }
            CircuitError::Parse { line, message } => {
                write!(f, "netlist parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// A topologically ordered Boolean circuit in SSA form.
///
/// Wire layout:
///
/// ```text
/// [0 .. garbler_inputs)                          garbler (Alice) inputs
/// [garbler_inputs .. garbler_inputs+evaluator_inputs)  evaluator (Bob) inputs
/// [num_inputs .. num_wires)                      gate outputs
/// ```
///
/// # Examples
///
/// ```
/// use haac_circuit::{Circuit, Gate, GateOp};
///
/// // c = a AND b, with a from the garbler and b from the evaluator.
/// let circuit = Circuit::new(
///     1,
///     1,
///     vec![Gate::new(GateOp::And, 0, 1, 2)],
///     vec![2],
/// ).unwrap();
/// assert_eq!(circuit.eval(&[true], &[false]).unwrap(), vec![false]);
/// assert_eq!(circuit.eval(&[true], &[true]).unwrap(), vec![true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    garbler_inputs: u32,
    evaluator_inputs: u32,
    gates: Vec<Gate>,
    outputs: Vec<WireId>,
    num_wires: u32,
}

impl Circuit {
    /// Builds and validates a circuit from its parts.
    ///
    /// Gates must already be in topological order (every wire is written
    /// before it is read, inputs count as written).
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] if the gate list violates SSA form,
    /// topological order, or an output is undefined.
    pub fn new(
        garbler_inputs: u32,
        evaluator_inputs: u32,
        gates: Vec<Gate>,
        outputs: Vec<WireId>,
    ) -> Result<Self, CircuitError> {
        let num_inputs = garbler_inputs + evaluator_inputs;
        let num_wires = num_inputs + gates.len() as u32;
        let circuit = Circuit { garbler_inputs, evaluator_inputs, gates, outputs, num_wires };
        circuit.validate()?;
        Ok(circuit)
    }

    /// Validates SSA form, topological order and output definedness.
    ///
    /// # Errors
    ///
    /// Returns the first [`CircuitError`] encountered.
    pub fn validate(&self) -> Result<(), CircuitError> {
        let num_inputs = self.num_inputs();
        let mut defined = vec![false; self.num_wires as usize];
        for slot in defined.iter_mut().take(num_inputs as usize) {
            *slot = true;
        }
        for (i, gate) in self.gates.iter().enumerate() {
            let check_use = |wire: WireId| -> Result<(), CircuitError> {
                if wire >= self.num_wires || !defined[wire as usize] {
                    Err(CircuitError::UseBeforeDef { gate_index: i, wire })
                } else {
                    Ok(())
                }
            };
            check_use(gate.a)?;
            if gate.op != GateOp::Inv {
                check_use(gate.b)?;
            }
            if gate.out >= self.num_wires {
                return Err(CircuitError::WireCountMismatch {
                    declared: self.num_wires,
                    required: gate.out + 1,
                });
            }
            if defined[gate.out as usize] {
                return Err(CircuitError::MultipleAssignment { gate_index: i, wire: gate.out });
            }
            defined[gate.out as usize] = true;
        }
        for &out in &self.outputs {
            if out >= self.num_wires || !defined[out as usize] {
                return Err(CircuitError::UndefinedOutput { wire: out });
            }
        }
        Ok(())
    }

    /// Number of garbler (Alice) input bits.
    #[inline]
    pub fn garbler_inputs(&self) -> u32 {
        self.garbler_inputs
    }

    /// Number of evaluator (Bob) input bits.
    #[inline]
    pub fn evaluator_inputs(&self) -> u32 {
        self.evaluator_inputs
    }

    /// Total number of primary input bits.
    #[inline]
    pub fn num_inputs(&self) -> u32 {
        self.garbler_inputs + self.evaluator_inputs
    }

    /// Total number of wires (inputs + one per gate).
    #[inline]
    pub fn num_wires(&self) -> u32 {
        self.num_wires
    }

    /// The gates in topological order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The circuit output wires, in output bit order.
    #[inline]
    pub fn outputs(&self) -> &[WireId] {
        &self.outputs
    }

    /// Number of gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of AND gates (each costs a garbled table).
    pub fn num_and_gates(&self) -> usize {
        self.gates.iter().filter(|g| g.is_and()).count()
    }

    /// Evaluates the circuit over plaintext Booleans.
    ///
    /// This is the reference semantics used to validate the garbled
    /// execution and the HAAC functional simulator.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InputLength`] if either input slice has the
    /// wrong number of bits.
    pub fn eval(
        &self,
        garbler_input: &[bool],
        evaluator_input: &[bool],
    ) -> Result<Vec<bool>, CircuitError> {
        if garbler_input.len() != self.garbler_inputs as usize {
            return Err(CircuitError::InputLength {
                party: "garbler",
                expected: self.garbler_inputs as usize,
                got: garbler_input.len(),
            });
        }
        if evaluator_input.len() != self.evaluator_inputs as usize {
            return Err(CircuitError::InputLength {
                party: "evaluator",
                expected: self.evaluator_inputs as usize,
                got: evaluator_input.len(),
            });
        }
        let mut wires = vec![false; self.num_wires as usize];
        wires[..garbler_input.len()].copy_from_slice(garbler_input);
        wires[garbler_input.len()..garbler_input.len() + evaluator_input.len()]
            .copy_from_slice(evaluator_input);
        for gate in &self.gates {
            let a = wires[gate.a as usize];
            let value = match gate.op {
                GateOp::And => a & wires[gate.b as usize],
                GateOp::Xor => a ^ wires[gate.b as usize],
                GateOp::Inv => !a,
            };
            wires[gate.out as usize] = value;
        }
        Ok(self.outputs.iter().map(|&w| wires[w as usize]).collect())
    }

    /// Computes the dependence level of every wire.
    ///
    /// Primary inputs are level 0; a gate's output level is one more than
    /// the maximum of its input levels. This is the leveled dependence
    /// graph HAAC's full-reorder pass traverses breadth-first (paper §4.2.1).
    pub fn wire_levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.num_wires as usize];
        for gate in &self.gates {
            let la = levels[gate.a as usize];
            let lb = if gate.op == GateOp::Inv { la } else { levels[gate.b as usize] };
            levels[gate.out as usize] = la.max(lb) + 1;
        }
        levels
    }

    /// Circuit depth: the number of gate levels on the critical path.
    pub fn depth(&self) -> u32 {
        self.wire_levels().into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_and() -> Circuit {
        // out0 = (a ^ b), out1 = (a & b), out2 = !a
        Circuit::new(
            1,
            1,
            vec![Gate::new(GateOp::Xor, 0, 1, 2), Gate::new(GateOp::And, 0, 1, 3), Gate::inv(0, 4)],
            vec![2, 3, 4],
        )
        .unwrap()
    }

    #[test]
    fn eval_truth_table() {
        let c = xor_and();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = c.eval(&[a], &[b]).unwrap();
            assert_eq!(out, vec![a ^ b, a & b, !a]);
        }
    }

    #[test]
    fn validate_rejects_use_before_def() {
        let err = Circuit::new(1, 1, vec![Gate::new(GateOp::And, 0, 5, 2)], vec![2]).unwrap_err();
        assert!(matches!(err, CircuitError::UseBeforeDef { wire: 5, .. }));
    }

    #[test]
    fn validate_rejects_multiple_assignment() {
        let err = Circuit::new(
            1,
            1,
            vec![Gate::new(GateOp::Xor, 0, 1, 2), Gate::new(GateOp::And, 0, 1, 2)],
            vec![2],
        )
        .unwrap_err();
        assert!(matches!(err, CircuitError::MultipleAssignment { wire: 2, .. }));
    }

    #[test]
    fn validate_rejects_undefined_output() {
        let err = Circuit::new(1, 1, vec![Gate::new(GateOp::And, 0, 1, 2)], vec![3]).unwrap_err();
        assert!(matches!(err, CircuitError::UndefinedOutput { wire: 3 }));
    }

    #[test]
    fn eval_rejects_wrong_input_length() {
        let c = xor_and();
        let err = c.eval(&[true, false], &[false]).unwrap_err();
        assert!(matches!(err, CircuitError::InputLength { party: "garbler", .. }));
        let err = c.eval(&[true], &[]).unwrap_err();
        assert!(matches!(err, CircuitError::InputLength { party: "evaluator", .. }));
    }

    #[test]
    fn levels_and_depth() {
        // depth-2 chain: w2 = a^b; w3 = w2 & a
        let c = Circuit::new(
            1,
            1,
            vec![Gate::new(GateOp::Xor, 0, 1, 2), Gate::new(GateOp::And, 2, 0, 3)],
            vec![3],
        )
        .unwrap();
        assert_eq!(c.depth(), 2);
        assert_eq!(c.wire_levels(), vec![0, 0, 1, 2]);
    }

    #[test]
    fn and_gate_count() {
        let c = xor_and();
        assert_eq!(c.num_and_gates(), 1);
        assert_eq!(c.num_gates(), 3);
        assert_eq!(c.num_wires(), 5);
    }

    #[test]
    fn inv_ignores_b() {
        let c = Circuit::new(1, 0, vec![Gate::inv(0, 1)], vec![1]).unwrap();
        assert_eq!(c.eval(&[false], &[]).unwrap(), vec![true]);
        assert_eq!(c.eval(&[true], &[]).unwrap(), vec![false]);
    }
}
