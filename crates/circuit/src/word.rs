//! Word-level (multi-bit) circuit operations.
//!
//! All words are little-endian `Vec<Bit>` ([`Word`]). These are the
//! synthesis building blocks the VIP-Bench workload generators use:
//! ripple adders (1 AND/bit), comparators, barrel shifters, schoolbook
//! multipliers, restoring dividers, and carry-save popcount/sum trees.
//!
//! Binary operations require operands of equal width and panic otherwise
//! (width mismatches are construction-time bugs, not runtime conditions).

use crate::builder::{Bit, Builder, Word};

impl Builder {
    /// A public constant word of `width` bits (little-endian).
    ///
    /// Constants cost no gates until they meet a secret value.
    pub fn const_word(&self, value: u64, width: u32) -> Word {
        (0..width).map(|i| Bit::Const(i < 64 && (value >> i) & 1 == 1)).collect()
    }

    /// Interprets a word of constants; returns `None` if any bit is secret.
    pub fn word_as_const(&self, word: &[Bit]) -> Option<u64> {
        let mut value = 0u64;
        for (i, bit) in word.iter().enumerate() {
            match bit.as_const() {
                Some(true) if i < 64 => value |= 1 << i,
                Some(_) => {}
                None => return None,
            }
        }
        Some(value)
    }

    /// Ripple-carry addition; returns `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn add_words(&mut self, x: &[Bit], y: &[Bit]) -> (Word, Bit) {
        self.add_words_with_carry(x, y, Bit::FALSE)
    }

    /// Ripple-carry addition with explicit carry-in.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn add_words_with_carry(&mut self, x: &[Bit], y: &[Bit], carry_in: Bit) -> (Word, Bit) {
        assert_eq!(x.len(), y.len(), "add_words requires equal widths");
        let mut carry = carry_in;
        let mut sum = Vec::with_capacity(x.len());
        for (&a, &b) in x.iter().zip(y) {
            let (s, c) = self.full_adder(a, b, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Two's-complement subtraction `x - y`; returns `(difference, borrow)`.
    ///
    /// `borrow` is true iff `x < y` (unsigned).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn sub_words(&mut self, x: &[Bit], y: &[Bit]) -> (Word, Bit) {
        let ny: Word = y.iter().map(|&b| self.not(b)).collect();
        let (diff, carry) = self.add_words_with_carry(x, &ny, Bit::TRUE);
        let borrow = self.not(carry);
        (diff, borrow)
    }

    /// Two's-complement negation.
    pub fn neg_word(&mut self, x: &[Bit]) -> Word {
        let zero = self.const_word(0, x.len() as u32);
        self.sub_words(&zero, x).0
    }

    /// Unsigned `x < y`.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn lt_u(&mut self, x: &[Bit], y: &[Bit]) -> Bit {
        self.sub_words(x, y).1
    }

    /// Unsigned `x > y`.
    pub fn gt_u(&mut self, x: &[Bit], y: &[Bit]) -> Bit {
        self.lt_u(y, x)
    }

    /// Unsigned `x <= y`.
    pub fn le_u(&mut self, x: &[Bit], y: &[Bit]) -> Bit {
        let gt = self.gt_u(x, y);
        self.not(gt)
    }

    /// Unsigned `x >= y`.
    pub fn ge_u(&mut self, x: &[Bit], y: &[Bit]) -> Bit {
        let lt = self.lt_u(x, y);
        self.not(lt)
    }

    /// Signed (two's-complement) `x < y`.
    ///
    /// Implemented by biasing both operands (flipping the sign bits) and
    /// comparing unsigned, which is free.
    pub fn lt_s(&mut self, x: &[Bit], y: &[Bit]) -> Bit {
        assert!(!x.is_empty(), "lt_s requires at least one bit");
        let mut xb = x.to_vec();
        let mut yb = y.to_vec();
        let xm = *xb.last().unwrap();
        let ym = *yb.last().unwrap();
        *xb.last_mut().unwrap() = self.not(xm);
        *yb.last_mut().unwrap() = self.not(ym);
        self.lt_u(&xb, &yb)
    }

    /// Bitwise equality `x == y` (AND-tree of XNORs).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn eq_words(&mut self, x: &[Bit], y: &[Bit]) -> Bit {
        assert_eq!(x.len(), y.len(), "eq_words requires equal widths");
        let bits: Vec<Bit> = x.iter().zip(y).map(|(&a, &b)| self.xnor(a, b)).collect();
        self.and_reduce(&bits)
    }

    /// Balanced AND-reduction of a bit list (true for the empty list).
    pub fn and_reduce(&mut self, bits: &[Bit]) -> Bit {
        self.reduce(bits, Bit::TRUE, Builder::and)
    }

    /// Balanced OR-reduction of a bit list (false for the empty list).
    pub fn or_reduce(&mut self, bits: &[Bit]) -> Bit {
        self.reduce(bits, Bit::FALSE, Builder::or)
    }

    /// Balanced XOR-reduction of a bit list (false for the empty list).
    pub fn xor_reduce(&mut self, bits: &[Bit]) -> Bit {
        self.reduce(bits, Bit::FALSE, Builder::xor)
    }

    fn reduce(&mut self, bits: &[Bit], empty: Bit, op: fn(&mut Builder, Bit, Bit) -> Bit) -> Bit {
        match bits.len() {
            0 => empty,
            1 => bits[0],
            n => {
                let (lo, hi) = bits.split_at(n / 2);
                let l = self.reduce(lo, empty, op);
                let r = self.reduce(hi, empty, op);
                op(self, l, r)
            }
        }
    }

    /// Word-level multiplexer: `if sel { t } else { f }`, bit by bit.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn mux_word(&mut self, sel: Bit, t: &[Bit], f: &[Bit]) -> Word {
        assert_eq!(t.len(), f.len(), "mux_word requires equal widths");
        t.iter().zip(f).map(|(&a, &b)| self.mux(sel, a, b)).collect()
    }

    /// Bitwise AND of two words.
    pub fn and_words(&mut self, x: &[Bit], y: &[Bit]) -> Word {
        assert_eq!(x.len(), y.len(), "and_words requires equal widths");
        x.iter().zip(y).map(|(&a, &b)| self.and(a, b)).collect()
    }

    /// Bitwise XOR of two words.
    pub fn xor_words(&mut self, x: &[Bit], y: &[Bit]) -> Word {
        assert_eq!(x.len(), y.len(), "xor_words requires equal widths");
        x.iter().zip(y).map(|(&a, &b)| self.xor(a, b)).collect()
    }

    /// Bitwise OR of two words.
    pub fn or_words(&mut self, x: &[Bit], y: &[Bit]) -> Word {
        assert_eq!(x.len(), y.len(), "or_words requires equal widths");
        x.iter().zip(y).map(|(&a, &b)| self.or(a, b)).collect()
    }

    /// Bitwise NOT of a word.
    pub fn not_word(&mut self, x: &[Bit]) -> Word {
        x.iter().map(|&b| self.not(b)).collect()
    }

    /// Logical left shift by a constant (wire rerouting; zero gates).
    pub fn shl_const(&self, x: &[Bit], amount: u32) -> Word {
        let n = x.len();
        let amount = amount as usize;
        let mut out = vec![Bit::FALSE; n];
        if amount < n {
            out[amount..].copy_from_slice(&x[..n - amount]);
        }
        out
    }

    /// Logical right shift by a constant (wire rerouting; zero gates).
    pub fn shr_const(&self, x: &[Bit], amount: u32) -> Word {
        let n = x.len();
        let amount = amount as usize;
        let mut out = vec![Bit::FALSE; n];
        if amount < n {
            out[..n - amount].copy_from_slice(&x[amount..]);
        }
        out
    }

    /// Left rotation by a constant (wire rerouting; zero gates).
    pub fn rotl_const(&self, x: &[Bit], amount: u32) -> Word {
        let n = x.len();
        let amount = amount as usize % n.max(1);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(x[(i + n - amount) % n]);
        }
        out
    }

    /// Barrel shifter: logical right shift by a secret amount.
    ///
    /// Shift amounts ≥ the word width produce zero. One mux level per
    /// shift-amount bit.
    pub fn shr_var(&mut self, x: &[Bit], amount: &[Bit]) -> Word {
        let mut cur = x.to_vec();
        for (stage, &bit) in amount.iter().enumerate() {
            let shifted = if stage >= 64 {
                self.const_word(0, cur.len() as u32)
            } else {
                self.shr_const(&cur, 1u32.checked_shl(stage as u32).unwrap_or(u32::MAX))
            };
            cur = self.mux_word(bit, &shifted, &cur);
        }
        cur
    }

    /// Barrel shifter: logical left shift by a secret amount.
    ///
    /// Shift amounts ≥ the word width produce zero.
    pub fn shl_var(&mut self, x: &[Bit], amount: &[Bit]) -> Word {
        let mut cur = x.to_vec();
        for (stage, &bit) in amount.iter().enumerate() {
            let shifted = if stage >= 64 {
                self.const_word(0, cur.len() as u32)
            } else {
                self.shl_const(&cur, 1u32.checked_shl(stage as u32).unwrap_or(u32::MAX))
            };
            cur = self.mux_word(bit, &shifted, &cur);
        }
        cur
    }

    /// Schoolbook multiplication producing the full `x.len() + y.len()` bit
    /// product.
    ///
    /// Multiplying by a public constant folds the absent partial products
    /// away, yielding a shift-and-add constant multiplier for free.
    pub fn mul_words(&mut self, x: &[Bit], y: &[Bit]) -> Word {
        let out_width = x.len() + y.len();
        let mut acc = self.const_word(0, out_width as u32);
        for (i, &yb) in y.iter().enumerate() {
            if yb == Bit::FALSE {
                continue;
            }
            // Partial product: (x & y_i) << i, widened to out_width.
            let mut pp = vec![Bit::FALSE; out_width];
            for (j, &xb) in x.iter().enumerate() {
                pp[i + j] = self.and(xb, yb);
            }
            acc = self.add_words(&acc, &pp).0;
        }
        acc
    }

    /// Schoolbook multiplication truncated to the width of `x` (wrapping,
    /// like `u32::wrapping_mul`).
    pub fn mul_words_trunc(&mut self, x: &[Bit], y: &[Bit]) -> Word {
        let n = x.len();
        let mut acc = self.const_word(0, n as u32);
        for (i, &yb) in y.iter().enumerate().take(n) {
            if yb == Bit::FALSE {
                continue;
            }
            let mut pp = vec![Bit::FALSE; n];
            for (j, &xb) in x.iter().enumerate().take(n - i) {
                pp[i + j] = self.and(xb, yb);
            }
            acc = self.add_words(&acc, &pp).0;
        }
        acc
    }

    /// Restoring division; returns `(quotient, remainder)` of unsigned
    /// `x / y`.
    ///
    /// Division by zero yields quotient all-ones and remainder `x`
    /// (matching the hardware-style restoring divider the paper's deep
    /// workloads imply).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn udivmod(&mut self, x: &[Bit], y: &[Bit]) -> (Word, Word) {
        assert_eq!(x.len(), y.len(), "udivmod requires equal widths");
        let n = x.len();
        let mut rem = self.const_word(0, n as u32);
        let mut quotient = vec![Bit::FALSE; n];
        for i in (0..n).rev() {
            // rem = (rem << 1) | x[i]  — the dropped MSB is provably zero
            // because rem < y <= 2^n - 1 keeps rem in n-1 bits... to stay
            // exact we track the shifted-out bit explicitly.
            let msb = *rem.last().unwrap();
            let mut shifted = self.shl_const(&rem, 1);
            shifted[0] = x[i];
            // Compare (msb:shifted) >= y  <=>  msb | (shifted >= y).
            let (diff, borrow) = self.sub_words(&shifted, y);
            let ge = self.not(borrow);
            let q = self.or(msb, ge);
            rem = self.mux_word(q, &diff, &shifted);
            quotient[i] = q;
        }
        (quotient, rem)
    }

    /// Population count: returns `ceil(log2(n+1))` bits counting the ones
    /// in `bits`, built from a carry-save (3:2 compressor) tree.
    pub fn popcount(&mut self, bits: &[Bit]) -> Word {
        let n = bits.len();
        if n == 0 {
            return vec![Bit::FALSE];
        }
        let width = (usize::BITS - n.leading_zeros()) as usize;
        // Buckets of bits by weight (power of two).
        let mut buckets: Vec<Vec<Bit>> = vec![Vec::new(); width + 1];
        buckets[0] = bits.to_vec();
        let mut weight = 0;
        while weight < buckets.len() {
            while buckets[weight].len() >= 3 {
                let a = buckets[weight].pop().unwrap();
                let b = buckets[weight].pop().unwrap();
                let c = buckets[weight].pop().unwrap();
                let (s, carry) = self.full_adder(a, b, c);
                buckets[weight].insert(0, s);
                if weight + 1 >= buckets.len() {
                    buckets.push(Vec::new());
                }
                buckets[weight + 1].push(carry);
            }
            weight += 1;
        }
        // Each bucket now has at most 2 bits; combine with one ripple add.
        let out_width = buckets.len();
        let mut first = vec![Bit::FALSE; out_width];
        let mut second = vec![Bit::FALSE; out_width];
        for (w, bucket) in buckets.iter().enumerate() {
            if let Some(&b) = bucket.first() {
                first[w] = b;
            }
            if let Some(&b) = bucket.get(1) {
                second[w] = b;
            }
        }
        self.add_words(&first, &second).0
    }

    /// Sums a list of equal-width words with a balanced adder tree,
    /// producing a result wide enough to avoid overflow.
    ///
    /// # Panics
    ///
    /// Panics if the word widths differ or the list is empty.
    pub fn sum_words(&mut self, words: &[Word]) -> Word {
        assert!(!words.is_empty(), "sum_words requires at least one word");
        let base_width = words[0].len();
        for w in words {
            assert_eq!(w.len(), base_width, "sum_words requires equal widths");
        }
        let extra = (usize::BITS - (words.len() - 1).leading_zeros()) as usize;
        let target = base_width + extra;
        let mut level: Vec<Word> = words
            .iter()
            .map(|w| {
                let mut wide = w.clone();
                wide.resize(target, Bit::FALSE);
                wide
            })
            .collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut iter = level.chunks(2);
            for chunk in &mut iter {
                match chunk {
                    [a, b] => next.push(self.add_words(a, b).0),
                    [a] => next.push(a.clone()),
                    _ => unreachable!("chunks(2) yields 1 or 2 items"),
                }
            }
            level = next;
        }
        level.pop().unwrap()
    }

    /// Leading-zero count of a word (counting from the MSB, i.e. the last
    /// element of the little-endian word).
    ///
    /// Returns `(count, is_zero)`; for an all-zero input `count` equals the
    /// word width.
    pub fn leading_zeros(&mut self, x: &[Bit]) -> (Word, Bit) {
        assert!(!x.is_empty(), "leading_zeros requires at least one bit");
        // Pad at the LSB end up to a power of two: leading zeros (from the
        // MSB) are unchanged and is_zero only weakens if padding were
        // nonzero, which it is not.
        let n = x.len().next_power_of_two();
        let mut padded = vec![Bit::FALSE; n - x.len()];
        padded.extend_from_slice(x);
        let (count, is_zero) = self.lzc_rec(&padded);
        // count is exact for the padded width; subtract nothing (padding
        // was at the LSB side). For the all-zero case the padded count is
        // n, but the caller expects x.len(); mux it. The count width must
        // be able to represent x.len() itself.
        let width = (usize::BITS - x.len().leading_zeros()) as usize;
        let true_count = self.const_word(x.len() as u64, width as u32);
        let mut count_w = count;
        count_w.resize(width, Bit::FALSE);
        let out = self.mux_word(is_zero, &true_count, &count_w);
        (out, is_zero)
    }

    /// Recursive LZC over a power-of-two width; returns (count, is_zero).
    fn lzc_rec(&mut self, x: &[Bit]) -> (Word, Bit) {
        if x.len() == 1 {
            let is_zero = self.not(x[0]);
            return (vec![], is_zero);
        }
        let half = x.len() / 2;
        let (lo, hi) = x.split_at(half);
        let (count_hi, zero_hi) = self.lzc_rec(hi);
        let (count_lo, zero_lo) = self.lzc_rec(lo);
        let is_zero = self.and(zero_hi, zero_lo);
        // If the high half is zero, the count is half + count_lo,
        // otherwise count_hi. Since `half` is a power of two, the result is
        // simply {zero_hi, mux(zero_hi, count_lo, count_hi)}.
        let low_bits = self.mux_word(zero_hi, &count_lo, &count_hi);
        let mut count = low_bits;
        count.push(zero_hi);
        (count, is_zero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a circuit computing `f` over two w-bit secret words and
    /// evaluates it on concrete values.
    fn eval2(w: u32, x: u64, y: u64, f: impl Fn(&mut Builder, &[Bit], &[Bit]) -> Word) -> u64 {
        let mut b = Builder::new();
        let xs = b.input_garbler(w);
        let ys = b.input_evaluator(w);
        let out = f(&mut b, &xs, &ys);
        let c = b.finish(out).unwrap();
        let gbits: Vec<bool> = (0..w).map(|i| (x >> i) & 1 == 1).collect();
        let ebits: Vec<bool> = (0..w).map(|i| (y >> i) & 1 == 1).collect();
        let out = c.eval(&gbits, &ebits).unwrap();
        out.iter().enumerate().fold(0u64, |acc, (i, &bit)| acc | ((bit as u64) << i))
    }

    #[test]
    fn add_small_exhaustive() {
        for x in 0..16u64 {
            for y in 0..16u64 {
                let got = eval2(4, x, y, |b, xs, ys| {
                    let (sum, carry) = b.add_words(xs, ys);
                    let mut out = sum;
                    out.push(carry);
                    out
                });
                assert_eq!(got, x + y, "{x} + {y}");
            }
        }
    }

    #[test]
    fn sub_and_borrow() {
        for x in 0..16u64 {
            for y in 0..16u64 {
                let got = eval2(4, x, y, |b, xs, ys| {
                    let (diff, borrow) = b.sub_words(xs, ys);
                    let mut out = diff;
                    out.push(borrow);
                    out
                });
                let diff = (x.wrapping_sub(y)) & 0xF;
                let borrow = (x < y) as u64;
                assert_eq!(got, diff | (borrow << 4), "{x} - {y}");
            }
        }
    }

    #[test]
    fn comparisons() {
        for x in 0..8u64 {
            for y in 0..8u64 {
                let got = eval2(3, x, y, |b, xs, ys| {
                    vec![b.lt_u(xs, ys), b.gt_u(xs, ys), b.le_u(xs, ys), b.ge_u(xs, ys), {
                        b.eq_words(xs, ys)
                    }]
                });
                let expect = (x < y) as u64
                    | (((x > y) as u64) << 1)
                    | (((x <= y) as u64) << 2)
                    | (((x >= y) as u64) << 3)
                    | (((x == y) as u64) << 4);
                assert_eq!(got, expect, "cmp {x} vs {y}");
            }
        }
    }

    #[test]
    fn signed_less_than() {
        for x in -4..4i64 {
            for y in -4..4i64 {
                let got =
                    eval2(3, (x & 7) as u64, (y & 7) as u64, |b, xs, ys| vec![b.lt_s(xs, ys)]);
                assert_eq!(got, (x < y) as u64, "signed {x} < {y}");
            }
        }
    }

    #[test]
    fn multiply_full_and_truncated() {
        for x in 0..16u64 {
            for y in 0..16u64 {
                let full = eval2(4, x, y, |b, xs, ys| b.mul_words(xs, ys));
                assert_eq!(full, x * y, "{x} * {y} full");
                let trunc = eval2(4, x, y, |b, xs, ys| b.mul_words_trunc(xs, ys));
                assert_eq!(trunc, (x * y) & 0xF, "{x} * {y} trunc");
            }
        }
    }

    #[test]
    fn multiply_by_constant_folds() {
        let mut b = Builder::new();
        let xs = b.input_garbler(8);
        let c = b.const_word(0, 8);
        let out = b.mul_words_trunc(&xs, &c);
        assert_eq!(b.word_as_const(&out), Some(0));
        assert_eq!(b.num_gates(), 0);
    }

    #[test]
    fn division_exhaustive_small() {
        for x in 0..32u64 {
            for y in 1..32u64 {
                let got = eval2(5, x, y, |b, xs, ys| {
                    let (q, r) = b.udivmod(xs, ys);
                    let mut out = q;
                    out.extend(r);
                    out
                });
                let expect = (x / y) | ((x % y) << 5);
                assert_eq!(got, expect, "{x} / {y}");
            }
        }
    }

    #[test]
    fn division_by_zero_convention() {
        let got = eval2(4, 11, 0, |b, xs, ys| {
            let (q, r) = b.udivmod(xs, ys);
            let mut out = q;
            out.extend(r);
            out
        });
        assert_eq!(got & 0xF, 0xF, "quotient saturates");
        assert_eq!(got >> 4, 11, "remainder is the dividend");
    }

    #[test]
    fn shifts_const_and_var() {
        for amount in 0..9u64 {
            let got = eval2(8, 0b1011_0110, amount, |b, xs, ys| b.shr_var(xs, &ys[..4]));
            assert_eq!(got, 0b1011_0110u64 >> amount.min(63), "shr {amount}");
            let got = eval2(8, 0b1011_0110, amount, |b, xs, ys| b.shl_var(xs, &ys[..4]));
            assert_eq!(got, (0b1011_0110u64 << amount.min(63)) & 0xFF, "shl {amount}");
        }
    }

    #[test]
    fn rotation() {
        let mut b = Builder::new();
        let xs = b.input_garbler(8);
        let rot = b.rotl_const(&xs, 3);
        let c = b.finish(rot).unwrap();
        let x = 0b1100_1010u8;
        let bits: Vec<bool> = (0..8).map(|i| (x >> i) & 1 == 1).collect();
        let out = c.eval(&bits, &[]).unwrap();
        let got = out.iter().enumerate().fold(0u8, |acc, (i, &bit)| acc | ((bit as u8) << i));
        assert_eq!(got, x.rotate_left(3));
    }

    #[test]
    fn popcount_matches() {
        for x in [0u64, 1, 0xFF, 0xAB, 0x5A, 0x80, 0x7F] {
            let got = eval2(8, x, 0, |b, xs, _| b.popcount(xs));
            assert_eq!(got, x.count_ones() as u64, "popcount {x:#x}");
        }
    }

    #[test]
    fn popcount_empty() {
        let mut b = Builder::new();
        let _ = b.input_garbler(1);
        let out = b.popcount(&[]);
        assert_eq!(b.word_as_const(&out), Some(0));
    }

    #[test]
    fn sum_words_tree() {
        let got = eval2(4, 0, 0, |b, _, _| {
            let words: Vec<Word> = (1..=9u64).map(|v| b.const_word(v, 4)).collect();
            b.sum_words(&words)
        });
        assert_eq!(got, 45);
    }

    #[test]
    fn leading_zeros_matches() {
        for x in [0u64, 1, 2, 0x80, 0xFF, 0x40, 0x23] {
            let got = eval2(8, x, 0, |b, xs, _| {
                let (count, is_zero) = b.leading_zeros(xs);
                let mut out = count;
                out.push(is_zero);
                out
            });
            let lz = (x as u8).leading_zeros() as u64;
            let width = 4; // lzc of 8-bit value fits in 4 bits
            assert_eq!(got & ((1 << width) - 1), lz, "lzc {x:#x}");
            assert_eq!(got >> width, (x == 0) as u64, "is_zero {x:#x}");
        }
    }

    #[test]
    fn mux_word_selects() {
        for sel in [0u64, 1] {
            let got = eval2(4, 0b1010, sel, |b, xs, ys| {
                let f = b.const_word(0b0101, 4);
                b.mux_word(ys[0], xs, &f)
            });
            assert_eq!(got, if sel == 1 { 0b1010 } else { 0b0101 });
        }
    }

    #[test]
    fn bitwise_words() {
        let x = 0b1100u64;
        let y = 0b1010u64;
        let got = eval2(4, x, y, |b, xs, ys| {
            let mut out = b.and_words(xs, ys);
            let or = b.or_words(xs, ys);
            let xor = b.xor_words(xs, ys);
            let not = b.not_word(xs);
            out.extend(or);
            out.extend(xor);
            out.extend(not);
            out
        });
        let expect = (x & y) | ((x | y) << 4) | ((x ^ y) << 8) | ((!x & 0xF) << 12);
        assert_eq!(got, expect);
    }

    #[test]
    fn ripple_adder_uses_n_ands() {
        let mut b = Builder::new();
        let xs = b.input_garbler(32);
        let ys = b.input_evaluator(32);
        let before = b.num_gates();
        let _ = b.add_words(&xs, &ys);
        let ands =
            b.snapshot_gates().iter().skip(before).filter(|g| g.op == crate::GateOp::And).count();
        assert_eq!(ands, 32);
    }
}
