//! AES-128 as a Boolean circuit (the Table 5 `AES-128` benchmark).
//!
//! The S-box is synthesized through the composite-field isomorphism of
//! [`crate::galois`]: basis change (free XORs) → tower inversion
//! (36 ANDs) → combined inverse-basis-change + affine output (free
//! XOR/INV). A full AES-128 encryption (10 rounds, in-circuit key
//! schedule) costs ≈ 200 S-boxes ≈ 7.2k AND gates, in line with the
//! hand-optimized netlists used by GC frameworks.
//!
//! Conventions: the key is the garbler's 128-bit input, the plaintext the
//! evaluator's; bytes are in FIPS-197 order, bits little-endian within
//! each byte.

use crate::builder::{Bit, Builder, Word};
use crate::galois::{self, TowerIso};
use crate::ir::{Circuit, CircuitError};

/// Derives the row-mask matrix of a linear map over GF(2)⁸ by probing
/// basis vectors.
fn matrix_of(f: impl Fn(u8) -> u8) -> [u8; 8] {
    let mut rows = [0u8; 8];
    for j in 0..8 {
        let col = f(1 << j);
        for (i, row) in rows.iter_mut().enumerate() {
            if (col >> i) & 1 != 0 {
                *row |= 1 << j;
            }
        }
    }
    rows
}

/// Applies an 8×8 GF(2) matrix (rows as bitmasks) to 8 circuit bits.
fn apply_matrix_gates(b: &mut Builder, rows: &[u8; 8], x: &[Bit]) -> Vec<Bit> {
    rows.iter()
        .map(|&row| {
            let selected: Vec<Bit> =
                (0..8).filter(|&j| (row >> j) & 1 != 0).map(|j| x[j]).collect();
            b.xor_reduce(&selected)
        })
        .collect()
}

/// Gate-level GF(2²) multiply; 3 ANDs (Karatsuba-style sharing).
fn gf4_mul_gates(b: &mut Builder, a: &[Bit], y: &[Bit]) -> Vec<Bit> {
    let p = b.and(a[1], y[1]);
    let q = b.and(a[0], y[0]);
    let sa = b.xor(a[0], a[1]);
    let sy = b.xor(y[0], y[1]);
    let t = b.and(sa, sy);
    let hi = b.xor(t, q);
    let lo = b.xor(p, q);
    vec![lo, hi]
}

/// Gate-level GF(2²) square — linear, zero gates beyond an XOR.
fn gf4_sq_gates(b: &mut Builder, a: &[Bit]) -> Vec<Bit> {
    let lo = b.xor(a[1], a[0]);
    vec![lo, a[1]]
}

/// Gate-level multiply by λ = 0b10 in GF(2²) — linear.
fn gf4_mul_lambda_gates(b: &mut Builder, a: &[Bit]) -> Vec<Bit> {
    let hi = b.xor(a[1], a[0]);
    vec![a[1], hi]
}

/// Gate-level GF(2⁴) multiply; 9 ANDs (3 GF(2²) multiplies, Karatsuba).
fn gf16_mul_gates(b: &mut Builder, a: &[Bit], y: &[Bit]) -> Vec<Bit> {
    let (al, ah) = (&a[0..2], &a[2..4]);
    let (yl, yh) = (&y[0..2], &y[2..4]);
    let hh = gf4_mul_gates(b, ah, yh);
    let ll = gf4_mul_gates(b, al, yl);
    let sa = vec![b.xor(a[0], a[2]), b.xor(a[1], a[3])];
    let sy = vec![b.xor(y[0], y[2]), b.xor(y[1], y[3])];
    let m = gf4_mul_gates(b, &sa, &sy);
    // hi = m ⊕ ll ; lo = λ·hh ⊕ ll
    let hi = [b.xor(m[0], ll[0]), b.xor(m[1], ll[1])];
    let lhh = gf4_mul_lambda_gates(b, &hh);
    let lo = [b.xor(lhh[0], ll[0]), b.xor(lhh[1], ll[1])];
    vec![lo[0], lo[1], hi[0], hi[1]]
}

/// Gate-level GF(2⁴) square — linear.
fn gf16_sq_gates(b: &mut Builder, a: &[Bit]) -> Vec<Bit> {
    let (al, ah) = (&a[0..2], &a[2..4]);
    let ah2 = gf4_sq_gates(b, ah);
    let al2 = gf4_sq_gates(b, al);
    let lah2 = gf4_mul_lambda_gates(b, &ah2);
    let lo = [b.xor(lah2[0], al2[0]), b.xor(lah2[1], al2[1])];
    vec![lo[0], lo[1], ah2[0], ah2[1]]
}

/// Gate-level GF(2⁴) inversion; 9 ANDs.
fn gf16_inv_gates(b: &mut Builder, a: &[Bit]) -> Vec<Bit> {
    let (al, ah) = (&a[0..2], &a[2..4]);
    let ah2 = gf4_sq_gates(b, ah);
    let lah2 = gf4_mul_lambda_gates(b, &ah2);
    let alah = gf4_mul_gates(b, ah, al);
    let al2 = gf4_sq_gates(b, al);
    let delta = vec![b.xor3(lah2[0], alah[0], al2[0]), b.xor3(lah2[1], alah[1], al2[1])];
    let delta_inv = gf4_sq_gates(b, &delta); // inverse == square in GF(2²)
    let hi = gf4_mul_gates(b, ah, &delta_inv);
    let sum = vec![b.xor(a[0], a[2]), b.xor(a[1], a[3])];
    let lo = gf4_mul_gates(b, &sum, &delta_inv);
    vec![lo[0], lo[1], hi[0], hi[1]]
}

/// Gate-level multiplication by the constant Λ in GF(2⁴) — linear.
fn gf16_mul_const_gates(b: &mut Builder, a: &[Bit], c: u8) -> Vec<Bit> {
    // Derive the 4×4 bit-matrix of x ↦ c·x and apply it as XOR trees.
    let mut rows = [0u8; 4];
    for j in 0..4 {
        let col = galois::gf16_mul(1 << j, c);
        for (i, row) in rows.iter_mut().enumerate() {
            if (col >> i) & 1 != 0 {
                *row |= 1 << j;
            }
        }
    }
    rows.iter()
        .map(|&row| {
            let selected: Vec<Bit> =
                (0..4).filter(|&j| (row >> j) & 1 != 0).map(|j| a[j]).collect();
            b.xor_reduce(&selected)
        })
        .collect()
}

/// Gate-level tower GF(2⁸) inversion; 36 ANDs.
fn gf256_inv_gates(b: &mut Builder, a: &[Bit], big_lambda: u8) -> Vec<Bit> {
    let (al, ah) = (&a[0..4], &a[4..8]);
    let ah2 = gf16_sq_gates(b, ah);
    let lah2 = gf16_mul_const_gates(b, &ah2, big_lambda);
    let alah = gf16_mul_gates(b, ah, al);
    let al2 = gf16_sq_gates(b, al);
    let delta: Vec<Bit> = (0..4).map(|i| b.xor3(lah2[i], alah[i], al2[i])).collect();
    let delta_inv = gf16_inv_gates(b, &delta);
    let hi = gf16_mul_gates(b, ah, &delta_inv);
    let sum: Vec<Bit> = (0..4).map(|i| b.xor(a[i], a[i + 4])).collect();
    let lo = gf16_mul_gates(b, &sum, &delta_inv);
    let mut out = lo;
    out.extend(hi);
    out
}

impl Builder {
    /// Three-way XOR convenience.
    pub fn xor3(&mut self, a: Bit, b: Bit, c: Bit) -> Bit {
        let ab = self.xor(a, b);
        self.xor(ab, c)
    }
}

/// Emits the AES S-box over 8 circuit bits (little-endian) using the
/// composite-field decomposition; approximately 36 AND gates.
///
/// # Examples
///
/// ```
/// use haac_circuit::{aes_circuit::sbox_gates, galois, Builder};
///
/// let iso = galois::TowerIso::derive();
/// let mut b = Builder::new();
/// let x = b.input_garbler(8);
/// let s = sbox_gates(&mut b, &iso, &x);
/// let c = b.finish(s).unwrap();
/// let bits: Vec<bool> = (0..8).map(|i| (0x53u8 >> i) & 1 == 1).collect();
/// let out = c.eval(&bits, &[]).unwrap();
/// let byte = out.iter().enumerate().fold(0u8, |a, (i, &v)| a | ((v as u8) << i));
/// assert_eq!(byte, 0xED); // S-box(0x53) per FIPS-197
/// ```
pub fn sbox_gates(b: &mut Builder, iso: &TowerIso, x: &[Bit]) -> Vec<Bit> {
    assert_eq!(x.len(), 8, "S-box operates on bytes");
    let tower = apply_matrix_gates(b, &iso.to_tower, x);
    let inv = gf256_inv_gates(b, &tower, iso.big_lambda);
    // Combined map: affine ∘ from_tower, plus the 0x63 constant.
    let combined = matrix_of(|v| {
        let aes = galois::apply_bit_matrix(&iso.from_tower, v);
        galois::aes_affine(aes) ^ 0x63 // matrix part only; constant added below
    });
    let linear = apply_matrix_gates(b, &combined, &inv);
    linear
        .iter()
        .enumerate()
        .map(|(i, &bit)| if (0x63 >> i) & 1 != 0 { b.not(bit) } else { bit })
        .collect()
}

/// xtime (multiply by 0x02 in the AES field) — linear, zero ANDs.
fn xtime_gates(b: &mut Builder, x: &[Bit]) -> Vec<Bit> {
    let mut out = vec![Bit::FALSE; 8];
    out[0] = x[7];
    out[1] = b.xor(x[0], x[7]);
    out[2] = x[1];
    out[3] = b.xor(x[2], x[7]);
    out[4] = b.xor(x[3], x[7]);
    out[5] = x[4];
    out[6] = x[5];
    out[7] = x[6];
    out
}

/// One MixColumns column over four state bytes.
fn mix_column_gates(b: &mut Builder, col: &[Vec<Bit>; 4]) -> [Vec<Bit>; 4] {
    let doubled: Vec<Vec<Bit>> = col.iter().map(|byte| xtime_gates(b, byte)).collect();
    let triple = |b: &mut Builder, i: usize| -> Vec<Bit> {
        (0..8).map(|k| b.xor(doubled[i][k], col[i][k])).collect()
    };
    let mut out: [Vec<Bit>; 4] = Default::default();
    for r in 0..4 {
        let t = triple(b, (r + 1) % 4);
        out[r] = (0..8)
            .map(|k| {
                let x1 = b.xor(doubled[r][k], t[k]);
                let x2 = b.xor(col[(r + 2) % 4][k], col[(r + 3) % 4][k]);
                b.xor(x1, x2)
            })
            .collect();
    }
    out
}

/// Emits a full AES-128 encryption over existing bits.
///
/// `key` and `plaintext` are 128 bits each (FIPS byte order, little-endian
/// bits within bytes). Returns the 128 ciphertext bits. The key schedule
/// is computed in-circuit.
///
/// # Panics
///
/// Panics if either input is not exactly 128 bits.
pub fn aes128_encrypt_gates(b: &mut Builder, key: &[Bit], plaintext: &[Bit]) -> Vec<Bit> {
    assert_eq!(key.len(), 128, "AES-128 key must be 128 bits");
    assert_eq!(plaintext.len(), 128, "AES block must be 128 bits");
    let iso = TowerIso::derive();

    let byte = |bits: &[Bit], i: usize| -> Vec<Bit> { bits[i * 8..(i + 1) * 8].to_vec() };

    // Key schedule: 44 four-byte words.
    let mut w: Vec<[Vec<Bit>; 4]> = Vec::with_capacity(44);
    for i in 0..4 {
        w.push([
            byte(key, 4 * i),
            byte(key, 4 * i + 1),
            byte(key, 4 * i + 2),
            byte(key, 4 * i + 3),
        ]);
    }
    for i in 4..44 {
        let prev = w[i - 1].clone();
        let temp: [Vec<Bit>; 4] = if i % 4 == 0 {
            // RotWord then SubWord then Rcon.
            let rot = [prev[1].clone(), prev[2].clone(), prev[3].clone(), prev[0].clone()];
            let mut subbed: [Vec<Bit>; 4] = core::array::from_fn(|k| sbox_gates(b, &iso, &rot[k]));
            let rcon = rcon_byte(i / 4);
            subbed[0] = (0..8)
                .map(|k| if (rcon >> k) & 1 != 0 { b.not(subbed[0][k]) } else { subbed[0][k] })
                .collect();
            subbed
        } else {
            prev
        };
        let base = w[i - 4].clone();
        let next: [Vec<Bit>; 4] =
            core::array::from_fn(|k| (0..8).map(|j| b.xor(base[k][j], temp[k][j])).collect());
        w.push(next);
    }
    let round_key = |w: &[[Vec<Bit>; 4]], round: usize| -> Vec<Vec<Bit>> {
        // 16 bytes: word r*4+c gives bytes of column c.
        (0..16).map(|i| w[round * 4 + i / 4][i % 4].clone()).collect()
    };

    // State: 16 bytes, index i = r + 4c as in FIPS-197 (byte i of input).
    let mut state: Vec<Vec<Bit>> = (0..16).map(|i| byte(plaintext, i)).collect();

    let add_round_key = |b: &mut Builder, state: &mut Vec<Vec<Bit>>, rk: &[Vec<Bit>]| {
        for (sb, kb) in state.iter_mut().zip(rk) {
            for (s, &k) in sb.iter_mut().zip(kb) {
                *s = b.xor(*s, k);
            }
        }
    };
    let sub_bytes = |b: &mut Builder, state: &mut Vec<Vec<Bit>>| {
        for sb in state.iter_mut() {
            *sb = sbox_gates(b, &iso, sb);
        }
    };
    let shift_rows = |state: &mut Vec<Vec<Bit>>| {
        let old = state.clone();
        for r in 0..4 {
            for c in 0..4 {
                state[r + 4 * c] = old[r + 4 * ((c + r) % 4)].clone();
            }
        }
    };
    let mix_columns = |b: &mut Builder, state: &mut Vec<Vec<Bit>>| {
        for c in 0..4 {
            let col: [Vec<Bit>; 4] = core::array::from_fn(|r| state[r + 4 * c].clone());
            let mixed = mix_column_gates(b, &col);
            for r in 0..4 {
                state[r + 4 * c] = mixed[r].clone();
            }
        }
    };

    let rk0 = round_key(&w, 0);
    add_round_key(b, &mut state, &rk0);
    for round in 1..10 {
        sub_bytes(b, &mut state);
        shift_rows(&mut state);
        mix_columns(b, &mut state);
        let rk = round_key(&w, round);
        add_round_key(b, &mut state, &rk);
    }
    sub_bytes(b, &mut state);
    shift_rows(&mut state);
    let rk10 = round_key(&w, 10);
    add_round_key(b, &mut state, &rk10);

    state.into_iter().flatten().collect()
}

/// Round constant byte for the AES key schedule (`0x02^(i-1)` in GF(2⁸)).
fn rcon_byte(i: usize) -> u8 {
    let mut r = 1u8;
    for _ in 1..i {
        r = galois::aes_mul(r, 2);
    }
    r
}

/// Builds the complete AES-128 circuit: the key is the garbler's input,
/// the plaintext block the evaluator's, the ciphertext the output.
///
/// # Errors
///
/// Propagates circuit-validation errors (which would indicate a bug in
/// the generator — the result is always structurally valid in practice).
pub fn aes128_circuit() -> Result<Circuit, CircuitError> {
    let mut b = Builder::new();
    let key: Word = b.input_garbler(128);
    let pt: Word = b.input_evaluator(128);
    let ct = aes128_encrypt_gates(&mut b, &key, &pt);
    b.finish(ct)
}

/// Converts a byte slice to circuit-convention bits (little-endian per
/// byte, bytes in order).
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    bytes.iter().flat_map(|&byte| (0..8).map(move |i| (byte >> i) & 1 == 1)).collect()
}

/// Converts circuit-convention bits back into bytes.
///
/// # Panics
///
/// Panics if the bit count is not a multiple of 8.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    assert_eq!(bits.len() % 8, 0, "bit count must be a whole number of bytes");
    bits.chunks(8)
        .map(|chunk| chunk.iter().enumerate().fold(0u8, |acc, (i, &bit)| acc | ((bit as u8) << i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::galois::compute_sbox;

    #[test]
    fn sbox_circuit_matches_table_exhaustively() {
        let iso = TowerIso::derive();
        let sbox = compute_sbox();
        let mut b = Builder::new();
        let x = b.input_garbler(8);
        let s = sbox_gates(&mut b, &iso, &x);
        let c = b.finish(s).unwrap();
        for v in 0..=255u8 {
            let bits: Vec<bool> = (0..8).map(|i| (v >> i) & 1 == 1).collect();
            let out = c.eval(&bits, &[]).unwrap();
            let got = out.iter().enumerate().fold(0u8, |acc, (i, &bit)| acc | ((bit as u8) << i));
            assert_eq!(got, sbox[v as usize], "S-box({v:#04x})");
        }
    }

    #[test]
    fn sbox_circuit_is_compact() {
        let iso = TowerIso::derive();
        let mut b = Builder::new();
        let x = b.input_garbler(8);
        let _ = sbox_gates(&mut b, &iso, &x);
        let ands = b.snapshot_gates().iter().filter(|g| g.op == crate::GateOp::And).count();
        assert!(ands <= 40, "S-box should cost ≈36 ANDs, got {ands}");
    }

    #[test]
    fn aes128_fips197_vector() {
        let c = aes128_circuit().unwrap();
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let out = c.eval(&bytes_to_bits(&key), &bytes_to_bits(&pt)).unwrap();
        assert_eq!(bits_to_bytes(&out), expected.to_vec());
    }

    #[test]
    fn aes128_gate_budget() {
        let c = aes128_circuit().unwrap();
        let ands = c.num_and_gates();
        assert!((6000..9000).contains(&ands), "AES-128 should cost ~7k ANDs, got {ands}");
    }

    #[test]
    fn rcon_values() {
        let expected = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rcon_byte(i + 1), e, "rcon[{}]", i + 1);
        }
    }

    #[test]
    fn bytes_bits_roundtrip() {
        let data = [0x00u8, 0xFF, 0xA5, 0x3C];
        assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data.to_vec());
    }
}
