//! Software GF(2⁸) arithmetic and the composite-field (tower) machinery
//! used to synthesize a compact AES S-box circuit.
//!
//! The AES-128 benchmark of Table 5 requires a Boolean AES circuit whose
//! AND count is comparable to the hand-optimized netlists EMP ships
//! (≈ 32–36 ANDs per S-box). Rather than embedding a third-party netlist,
//! we derive one from first principles:
//!
//! 1. Represent GF(2⁸) as the tower GF(((2²)²)²) where inversion in each
//!    extension is cheap (inversion in GF(2²) is squaring, i.e. *linear*).
//! 2. Search for an isomorphism between the AES polynomial field
//!    `GF(2)[x]/(x⁸+x⁴+x³+x+1)` and the tower (a basis-change matrix), by
//!    finding a tower element that is a root of the AES modulus.
//! 3. Emit the S-box as: basis change (XORs) → tower inversion (a handful
//!    of GF(2⁴)/GF(2²) multiplications = ANDs) → inverse basis change
//!    merged with the AES affine transform (XOR/INV).
//!
//! Everything in this module is plain (non-circuit) arithmetic; the gate
//! emission lives in [`crate::aes_circuit`].

/// The AES field modulus x⁸ + x⁴ + x³ + x + 1 (0x11B).
pub const AES_MODULUS: u16 = 0x11B;

/// Multiplication in the AES polynomial-basis field GF(2⁸)/0x11B.
///
/// # Examples
///
/// ```
/// use haac_circuit::galois::aes_mul;
/// assert_eq!(aes_mul(0x57, 0x83), 0xC1); // FIPS-197 §4.2 example
/// ```
pub fn aes_mul(a: u8, b: u8) -> u8 {
    let mut a = a as u16;
    let mut b = b as u16;
    let mut acc = 0u16;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a <<= 1;
        if a & 0x100 != 0 {
            a ^= AES_MODULUS;
        }
        b >>= 1;
    }
    acc as u8
}

/// Multiplicative inverse in the AES field (0 maps to 0).
pub fn aes_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^(2^8 - 2) = a^254 by square-and-multiply.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp != 0 {
        if exp & 1 != 0 {
            result = aes_mul(result, base);
        }
        base = aes_mul(base, base);
        exp >>= 1;
    }
    result
}

/// The AES S-box affine transform applied to `x` (after inversion).
pub fn aes_affine(x: u8) -> u8 {
    let mut out = 0u8;
    for i in 0..8 {
        let bit = ((x >> i) & 1)
            ^ ((x >> ((i + 4) % 8)) & 1)
            ^ ((x >> ((i + 5) % 8)) & 1)
            ^ ((x >> ((i + 6) % 8)) & 1)
            ^ ((x >> ((i + 7) % 8)) & 1)
            ^ ((0x63 >> i) & 1);
        out |= bit << i;
    }
    out
}

/// Computes the full 256-entry AES S-box from the field definition.
pub fn compute_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    for (i, slot) in sbox.iter_mut().enumerate() {
        *slot = aes_affine(aes_inv(i as u8));
    }
    sbox
}

// ---------------------------------------------------------------------------
// Tower field GF(((2²)²)²)
// ---------------------------------------------------------------------------

/// GF(2²) = `GF(2)[x]/(x²+x+1)`; elements are 2-bit values (bit 1 = x term).
pub fn gf4_mul(a: u8, b: u8) -> u8 {
    let (a1, a0) = ((a >> 1) & 1, a & 1);
    let (b1, b0) = ((b >> 1) & 1, b & 1);
    // (a1 x + a0)(b1 x + b0) with x² = x + 1
    let hi = (a1 & b1) ^ (a1 & b0) ^ (a0 & b1);
    let lo = (a1 & b1) ^ (a0 & b0);
    (hi << 1) | lo
}

/// Inversion in GF(2²): the inverse equals the square (`a³ = 1`).
pub fn gf4_inv(a: u8) -> u8 {
    gf4_mul(a, a)
}

/// λ for GF(2⁴) = `GF(2²)[y]/(y² + y + λ)`; λ = x (value 0b10) has nonzero
/// trace, making the polynomial irreducible.
pub const LAMBDA: u8 = 0b10;

/// Multiplication in GF(2⁴) as pairs over GF(2²) (bits 3..2 = hi, 1..0 = lo).
pub fn gf16_mul(a: u8, b: u8) -> u8 {
    let (ah, al) = (a >> 2, a & 3);
    let (bh, bl) = (b >> 2, b & 3);
    // (ah y + al)(bh y + bl), y² = y + λ:
    //   hi = ah·bh + ah·bl + al·bh
    //   lo = ah·bh·λ + al·bl
    let hh = gf4_mul(ah, bh);
    let hl = gf4_mul(ah, bl);
    let lh = gf4_mul(al, bh);
    let ll = gf4_mul(al, bl);
    let hi = hh ^ hl ^ lh;
    let lo = gf4_mul(hh, LAMBDA) ^ ll;
    (hi << 2) | lo
}

/// Inversion in GF(2⁴) using the quadratic-extension formula.
pub fn gf16_inv(a: u8) -> u8 {
    let (ah, al) = (a >> 2, a & 3);
    // Δ = ah²·λ + ah·al + al²   (norm of a)
    let delta = gf4_mul(gf4_mul(ah, ah), LAMBDA) ^ gf4_mul(ah, al) ^ gf4_mul(al, al);
    let delta_inv = gf4_inv(delta);
    let hi = gf4_mul(ah, delta_inv);
    let lo = gf4_mul(ah ^ al, delta_inv);
    (hi << 2) | lo
}

/// Searches for a Λ making z² + z + Λ irreducible over GF(2⁴).
///
/// A quadratic is irreducible iff it has no roots; we simply test all 16
/// candidate roots for each candidate Λ.
pub fn find_big_lambda() -> u8 {
    'cand: for lambda in 1..16u8 {
        for z in 0..16u8 {
            // z² + z + Λ == 0 ?
            if gf16_mul(z, z) ^ z ^ lambda == 0 {
                continue 'cand;
            }
        }
        return lambda;
    }
    unreachable!("an irreducible quadratic over GF(16) always exists")
}

/// Multiplication in the tower GF(2⁸) = `GF(2⁴)[z]/(z² + z + Λ)`.
///
/// `big_lambda` must come from [`find_big_lambda`]. Elements pack the
/// hi nibble as the z-coefficient.
pub fn gf256_tower_mul(a: u8, b: u8, big_lambda: u8) -> u8 {
    let (ah, al) = (a >> 4, a & 0xF);
    let (bh, bl) = (b >> 4, b & 0xF);
    let hh = gf16_mul(ah, bh);
    let hl = gf16_mul(ah, bl);
    let lh = gf16_mul(al, bh);
    let ll = gf16_mul(al, bl);
    let hi = hh ^ hl ^ lh;
    let lo = gf16_mul(hh, big_lambda) ^ ll;
    (hi << 4) | lo
}

/// Inversion in the tower GF(2⁸) (0 maps to 0).
pub fn gf256_tower_inv(a: u8, big_lambda: u8) -> u8 {
    let (ah, al) = (a >> 4, a & 0xF);
    let delta = gf16_mul(gf16_mul(ah, ah), big_lambda) ^ gf16_mul(ah, al) ^ gf16_mul(al, al);
    let delta_inv = gf16_inv(delta);
    let hi = gf16_mul(ah, delta_inv);
    let lo = gf16_mul(ah ^ al, delta_inv);
    (hi << 4) | lo
}

/// An isomorphism GF(2⁸)/0x11B → tower field, as a pair of 8×8 bit
/// matrices (`to_tower`, `from_tower`), each row a u8 bitmask applied to
/// the source bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TowerIso {
    /// Λ of the GF(2⁴) quadratic extension.
    pub big_lambda: u8,
    /// Row `i` of the AES→tower basis-change matrix.
    pub to_tower: [u8; 8],
    /// Row `i` of the tower→AES basis-change matrix.
    pub from_tower: [u8; 8],
}

impl TowerIso {
    /// Derives the isomorphism by searching for a tower-field root of the
    /// AES modulus and building the basis-change matrices from its powers.
    pub fn derive() -> TowerIso {
        let big_lambda = find_big_lambda();
        // Find β in the tower with β⁸+β⁴+β³+β+1 = 0.
        let beta = (1..=255u8)
            .find(|&beta| {
                let p = |e: u32| tower_pow(beta, e, big_lambda);
                p(8) ^ p(4) ^ p(3) ^ p(1) ^ 1 == 0
            })
            .expect("the AES modulus has roots in any GF(2^8) representation");
        // Columns of M: β^i. M maps AES coords (coefficients of α^i) to tower.
        let mut columns = [0u8; 8];
        for (i, col) in columns.iter_mut().enumerate() {
            *col = tower_pow(beta, i as u32, big_lambda);
        }
        let to_tower = columns_to_rows(&columns);
        let from_tower = invert_bit_matrix(&to_tower).expect("basis change is invertible");
        TowerIso { big_lambda, to_tower, from_tower }
    }

    /// Applies the AES→tower basis change.
    pub fn to_tower(&self, x: u8) -> u8 {
        apply_bit_matrix(&self.to_tower, x)
    }

    /// Applies the tower→AES basis change.
    pub fn from_tower(&self, x: u8) -> u8 {
        apply_bit_matrix(&self.from_tower, x)
    }
}

fn tower_pow(base: u8, exp: u32, big_lambda: u8) -> u8 {
    let mut result = 1u8;
    for _ in 0..exp {
        result = gf256_tower_mul(result, base, big_lambda);
    }
    result
}

/// Converts column-major u8 columns into row bitmasks.
fn columns_to_rows(columns: &[u8; 8]) -> [u8; 8] {
    let mut rows = [0u8; 8];
    for (c, &col) in columns.iter().enumerate() {
        for (r, row) in rows.iter_mut().enumerate() {
            if (col >> r) & 1 != 0 {
                *row |= 1 << c;
            }
        }
    }
    rows
}

/// Applies an 8×8 GF(2) matrix (rows as bitmasks) to a bit-vector.
pub fn apply_bit_matrix(rows: &[u8; 8], x: u8) -> u8 {
    let mut out = 0u8;
    for (i, &row) in rows.iter().enumerate() {
        out |= (((row & x).count_ones() & 1) as u8) << i;
    }
    out
}

/// Inverts an 8×8 GF(2) matrix via Gauss-Jordan; `None` if singular.
pub fn invert_bit_matrix(rows: &[u8; 8]) -> Option<[u8; 8]> {
    let mut a = *rows;
    let mut inv: [u8; 8] = core::array::from_fn(|i| 1 << i);
    for col in 0..8 {
        let pivot = (col..8).find(|&r| (a[r] >> col) & 1 != 0)?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        for r in 0..8 {
            if r != col && (a[r] >> col) & 1 != 0 {
                a[r] ^= a[col];
                inv[r] ^= inv[col];
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes_mul_fips_example() {
        assert_eq!(aes_mul(0x57, 0x13), 0xFE); // FIPS-197 §4.2.1
        assert_eq!(aes_mul(0x57, 0x02), 0xAE);
        assert_eq!(aes_mul(0x01, 0xAB), 0xAB);
    }

    #[test]
    fn aes_inverse_roundtrip() {
        for a in 1..=255u8 {
            assert_eq!(aes_mul(a, aes_inv(a)), 1, "inverse of {a:#x}");
        }
        assert_eq!(aes_inv(0), 0);
    }

    #[test]
    fn sbox_known_entries() {
        let sbox = compute_sbox();
        // Canonical FIPS-197 spot values.
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7C);
        assert_eq!(sbox[0x53], 0xED);
        assert_eq!(sbox[0xFF], 0x16);
    }

    #[test]
    fn gf4_field_axioms() {
        for a in 0..4u8 {
            for b in 0..4u8 {
                assert_eq!(gf4_mul(a, b), gf4_mul(b, a));
            }
            if a != 0 {
                assert_eq!(gf4_mul(a, gf4_inv(a)), 1, "gf4 inverse of {a}");
            }
        }
    }

    #[test]
    fn gf16_field_axioms() {
        for a in 0..16u8 {
            assert_eq!(gf16_mul(a, 1), a);
            if a != 0 {
                assert_eq!(gf16_mul(a, gf16_inv(a)), 1, "gf16 inverse of {a}");
            }
            for b in 0..16u8 {
                assert_eq!(gf16_mul(a, b), gf16_mul(b, a));
                for c in 0..16u8 {
                    assert_eq!(
                        gf16_mul(a, gf16_mul(b, c)),
                        gf16_mul(gf16_mul(a, b), c),
                        "associativity {a},{b},{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn tower_field_axioms() {
        let big_lambda = find_big_lambda();
        for a in 0..=255u8 {
            assert_eq!(gf256_tower_mul(a, 1, big_lambda), a);
            if a != 0 {
                assert_eq!(
                    gf256_tower_mul(a, gf256_tower_inv(a, big_lambda), big_lambda),
                    1,
                    "tower inverse of {a:#x}"
                );
            }
        }
    }

    #[test]
    fn isomorphism_preserves_multiplication() {
        let iso = TowerIso::derive();
        // φ(a·b) = φ(a)·φ(b) for a sample grid (full 256×256 is slow in
        // debug builds; the structure theorem makes sampling sufficient).
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                let lhs = iso.to_tower(aes_mul(a, b));
                let rhs = gf256_tower_mul(iso.to_tower(a), iso.to_tower(b), iso.big_lambda);
                assert_eq!(lhs, rhs, "φ({a:#x}·{b:#x})");
            }
        }
    }

    #[test]
    fn isomorphism_roundtrip() {
        let iso = TowerIso::derive();
        for a in 0..=255u8 {
            assert_eq!(iso.from_tower(iso.to_tower(a)), a);
        }
    }

    #[test]
    fn sbox_via_tower_matches_direct() {
        let iso = TowerIso::derive();
        let sbox = compute_sbox();
        for a in 0..=255u8 {
            let inv_tower = iso.from_tower(gf256_tower_inv(iso.to_tower(a), iso.big_lambda));
            assert_eq!(aes_affine(inv_tower), sbox[a as usize], "S-box({a:#x}) via tower");
        }
    }

    #[test]
    fn bit_matrix_inversion() {
        let iso = TowerIso::derive();
        let id = invert_bit_matrix(&iso.to_tower).unwrap();
        assert_eq!(id, iso.from_tower);
        let singular = [0u8; 8];
        assert!(invert_bit_matrix(&singular).is_none());
    }
}
