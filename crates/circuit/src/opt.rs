//! Netlist cleanup: dead-gate elimination.
//!
//! Synthesis frontends routinely leave gates whose outputs never reach a
//! circuit output (e.g. discarded carry chains). Since every gate costs
//! real cryptography under GC — an AND is four AES calls to garble —
//! pruning is a meaningful pre-pass before handing netlists to the HAAC
//! compiler, and EMP performs the equivalent cleanup.

use crate::ir::{Circuit, Gate, GateOp, WireId};

/// Result of pruning: the slimmed circuit plus what was removed.
#[derive(Debug, Clone)]
pub struct PruneReport {
    /// The pruned, renumbered circuit (semantically identical on its
    /// outputs).
    pub circuit: Circuit,
    /// Gates removed.
    pub removed_gates: usize,
    /// AND gates removed (the expensive ones).
    pub removed_ands: usize,
}

/// Removes every gate that no output transitively depends on, and
/// renumbers wires compactly. Inputs are never removed (the interface is
/// part of the contract), only gates.
pub fn prune(circuit: &Circuit) -> PruneReport {
    let num_inputs = circuit.num_inputs();
    let gates = circuit.gates();

    // Mark live wires backwards from the outputs.
    let mut live = vec![false; circuit.num_wires() as usize];
    for &out in circuit.outputs() {
        live[out as usize] = true;
    }
    // producer[w] = index of the gate producing wire w (if any).
    let mut producer = vec![usize::MAX; circuit.num_wires() as usize];
    for (i, gate) in gates.iter().enumerate() {
        producer[gate.out as usize] = i;
    }
    for i in (0..gates.len()).rev() {
        let gate = &gates[i];
        if !live[gate.out as usize] {
            continue;
        }
        live[gate.a as usize] = true;
        if gate.op != GateOp::Inv {
            live[gate.b as usize] = true;
        }
    }

    // Renumber: inputs keep their ids; surviving gates get fresh outputs
    // in the original order.
    let mut remap = vec![WireId::MAX; circuit.num_wires() as usize];
    for w in 0..num_inputs {
        remap[w as usize] = w;
    }
    let mut next = num_inputs;
    let mut kept = Vec::new();
    let mut removed_ands = 0usize;
    for gate in gates {
        if live[gate.out as usize] {
            remap[gate.out as usize] = next;
            kept.push(Gate {
                a: remap[gate.a as usize],
                b: if gate.op == GateOp::Inv {
                    remap[gate.a as usize]
                } else {
                    remap[gate.b as usize]
                },
                out: next,
                op: gate.op,
            });
            next += 1;
        } else if gate.op == GateOp::And {
            removed_ands += 1;
        }
    }
    let removed_gates = gates.len() - kept.len();
    let outputs = circuit.outputs().iter().map(|&w| remap[w as usize]).collect();
    let circuit = Circuit::new(circuit.garbler_inputs(), circuit.evaluator_inputs(), kept, outputs)
        .expect("pruned circuit is valid");
    PruneReport { circuit, removed_gates, removed_ands }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    #[test]
    fn prune_removes_dangling_work() {
        let mut b = Builder::new();
        let x = b.input_garbler(8);
        let y = b.input_evaluator(8);
        // Useful: the sum. Dead: a full multiplier whose result is dropped.
        let (sum, _) = b.add_words(&x, &y);
        let _dead = b.mul_words(&x, &y);
        let c = b.finish(sum).unwrap();
        let report = prune(&c);
        assert!(report.removed_gates > 100, "multiplier should be removed");
        assert!(report.removed_ands > 50);
        // Semantics preserved.
        for (xv, yv) in [(3u64, 5u64), (255, 1), (0, 0)] {
            let g = crate::to_bits(xv, 8);
            let e = crate::to_bits(yv, 8);
            assert_eq!(c.eval(&g, &e).unwrap(), report.circuit.eval(&g, &e).unwrap());
        }
    }

    #[test]
    fn prune_is_identity_on_lean_circuits() {
        let mut b = Builder::new();
        let x = b.input_garbler(4);
        let y = b.input_evaluator(4);
        let (sum, carry) = b.add_words(&x, &y);
        let mut out = sum;
        out.push(carry);
        let c = b.finish(out).unwrap();
        let report = prune(&c);
        assert_eq!(report.removed_gates, 0);
        assert_eq!(report.circuit.num_gates(), c.num_gates());
    }

    #[test]
    fn prune_keeps_input_interface() {
        let mut b = Builder::new();
        let x = b.input_garbler(4);
        let _y = b.input_evaluator(4); // never used
        let c = b.finish(vec![x[0]]).unwrap();
        let report = prune(&c);
        assert_eq!(report.circuit.garbler_inputs(), 4);
        assert_eq!(report.circuit.evaluator_inputs(), 4);
    }
}
