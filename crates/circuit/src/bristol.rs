//! Bristol-format netlist reader and writer.
//!
//! HAAC's software flow (paper Fig. 5) starts from netlists that EMP emits
//! in the classic "Bristol" format [Tillich & Smart]:
//!
//! ```text
//! <num_gates> <num_wires>
//! <garbler_inputs> <evaluator_inputs> <num_outputs>
//!
//! 2 1 <in_a> <in_b> <out> AND
//! 2 1 <in_a> <in_b> <out> XOR
//! 1 1 <in>          <out> INV
//! ```
//!
//! Outputs are, by convention, the last `num_outputs` wires in ascending
//! order. [`write()`](fn@write) renumbers wires if needed so that round-tripping always
//! produces a conforming file.

use crate::ir::{Circuit, CircuitError, Gate, GateOp, WireId};

/// Parses a Bristol-format netlist from a string.
///
/// Blank lines are ignored; tokens may be separated by arbitrary
/// whitespace. Gates must appear in topological order (Bristol files in
/// the wild always are).
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] for malformed text and the usual
/// validation errors for inconsistent netlists.
///
/// # Examples
///
/// ```
/// let text = "1 3\n1 1 1\n2 1 0 1 2 AND\n";
/// let c = haac_circuit::bristol::parse(text)?;
/// assert_eq!(c.num_gates(), 1);
/// assert_eq!(c.eval(&[true], &[true])?, vec![true]);
/// # Ok::<(), haac_circuit::CircuitError>(())
/// ```
pub fn parse(text: &str) -> Result<Circuit, CircuitError> {
    let mut lines =
        text.lines().enumerate().map(|(i, l)| (i + 1, l.trim())).filter(|(_, l)| !l.is_empty());

    let (line_no, header) = lines
        .next()
        .ok_or_else(|| CircuitError::Parse { line: 0, message: "empty netlist".to_string() })?;
    let [num_gates, num_wires] = parse_fields::<2>(line_no, header)?;

    let (line_no, io_header) = lines.next().ok_or_else(|| CircuitError::Parse {
        line: line_no,
        message: "missing input/output header".to_string(),
    })?;
    let [garbler_inputs, evaluator_inputs, num_outputs] = parse_fields::<3>(line_no, io_header)?;

    let mut gates = Vec::with_capacity(num_gates as usize);
    for (line_no, line) in lines {
        let mut tokens = line.split_whitespace();
        let arity: u32 = next_number(line_no, &mut tokens)?;
        let n_out: u32 = next_number(line_no, &mut tokens)?;
        if n_out != 1 {
            return Err(CircuitError::Parse {
                line: line_no,
                message: format!("gates must have exactly 1 output, got {n_out}"),
            });
        }
        let gate = match arity {
            1 => {
                let a: WireId = next_number(line_no, &mut tokens)?;
                let out: WireId = next_number(line_no, &mut tokens)?;
                expect_op(line_no, &mut tokens, "INV")?;
                Gate::inv(a, out)
            }
            2 => {
                let a: WireId = next_number(line_no, &mut tokens)?;
                let b: WireId = next_number(line_no, &mut tokens)?;
                let out: WireId = next_number(line_no, &mut tokens)?;
                let op = match tokens.next() {
                    Some("AND") => GateOp::And,
                    Some("XOR") => GateOp::Xor,
                    Some(other) => {
                        return Err(CircuitError::Parse {
                            line: line_no,
                            message: format!("unknown binary gate {other:?}"),
                        })
                    }
                    None => {
                        return Err(CircuitError::Parse {
                            line: line_no,
                            message: "missing gate kind".to_string(),
                        })
                    }
                };
                Gate::new(op, a, b, out)
            }
            other => {
                return Err(CircuitError::Parse {
                    line: line_no,
                    message: format!("unsupported gate arity {other}"),
                })
            }
        };
        gates.push(gate);
    }

    if gates.len() as u32 != num_gates {
        return Err(CircuitError::Parse {
            line: 0,
            message: format!("header declares {num_gates} gates, found {}", gates.len()),
        });
    }
    let declared_inputs = garbler_inputs + evaluator_inputs;
    if declared_inputs + num_gates != num_wires {
        return Err(CircuitError::WireCountMismatch {
            declared: num_wires,
            required: declared_inputs + num_gates,
        });
    }
    let outputs: Vec<WireId> = (num_wires - num_outputs..num_wires).collect();
    Circuit::new(garbler_inputs, evaluator_inputs, gates, outputs)
}

/// Serializes a circuit to Bristol format.
///
/// Because Bristol requires outputs to be the last wires of the file, the
/// circuit is renumbered when its outputs are not already in that
/// position. Renumbering preserves semantics (it relabels wires only);
/// output wires that are primary inputs or duplicated are routed through
/// fresh `XOR(w, w) ⊕ ...` — more precisely, an identity is synthesized as
/// a pair of `INV` gates, keeping the netlist AND-count unchanged.
pub fn write(circuit: &Circuit) -> String {
    let circuit = normalize_outputs(circuit);
    let mut out = String::new();
    out.push_str(&format!("{} {}\n", circuit.num_gates(), circuit.num_wires()));
    out.push_str(&format!(
        "{} {} {}\n\n",
        circuit.garbler_inputs(),
        circuit.evaluator_inputs(),
        circuit.outputs().len()
    ));
    for gate in circuit.gates() {
        match gate.op {
            GateOp::Inv => out.push_str(&format!("1 1 {} {} INV\n", gate.a, gate.out)),
            GateOp::And => out.push_str(&format!("2 1 {} {} {} AND\n", gate.a, gate.b, gate.out)),
            GateOp::Xor => out.push_str(&format!("2 1 {} {} {} XOR\n", gate.a, gate.b, gate.out)),
        }
    }
    out
}

/// Rewrites a circuit so its outputs are exactly the last wires, in order.
///
/// This is the canonical form required by the Bristol on-disk format. The
/// result is semantically identical to the input.
pub fn normalize_outputs(circuit: &Circuit) -> Circuit {
    let n_out = circuit.outputs().len() as u32;
    let already_canonical = n_out <= circuit.num_wires()
        && circuit
            .outputs()
            .iter()
            .enumerate()
            .all(|(i, &w)| w == circuit.num_wires() - n_out + i as u32);
    if already_canonical {
        return circuit.clone();
    }

    // Append a double-inverter identity for each output, making the new
    // outputs the freshest wires; then they are the last wires by
    // construction. (Two INVs rather than one keep polarity.)
    let mut gates = circuit.gates().to_vec();
    let mut next = circuit.num_wires();
    let mut new_outputs = Vec::with_capacity(circuit.outputs().len());
    for &w in circuit.outputs() {
        let mid = next;
        let fin = next + 1;
        next += 2;
        gates.push(Gate::inv(w, mid));
        gates.push(Gate::inv(mid, fin));
        new_outputs.push(fin);
    }
    // Interleave so that final output wires are contiguous and last:
    // they already are, since we allocated mid/fin pairs in order — but the
    // mids sit between fins. Renumber so fins occupy the final block.
    let circuit =
        Circuit::new(circuit.garbler_inputs(), circuit.evaluator_inputs(), gates, new_outputs)
            .expect("identity-extended circuit is valid");
    renumber_tail(&circuit)
}

/// Renumbers wires so that output wires occupy the final contiguous block.
fn renumber_tail(circuit: &Circuit) -> Circuit {
    let num_wires = circuit.num_wires();
    let n_out = circuit.outputs().len() as u32;
    let mut remap: Vec<WireId> = (0..num_wires).collect();
    // Desired: outputs()[i] -> num_wires - n_out + i. Build a permutation.
    let mut is_output = vec![false; num_wires as usize];
    for &w in circuit.outputs() {
        is_output[w as usize] = true;
    }
    let mut next_non_output = circuit.num_inputs();
    for w in circuit.num_inputs()..num_wires {
        if !is_output[w as usize] {
            remap[w as usize] = next_non_output;
            next_non_output += 1;
        }
    }
    for (i, &w) in circuit.outputs().iter().enumerate() {
        remap[w as usize] = num_wires - n_out + i as u32;
    }

    // Gate outputs must remain topologically ordered; sort gates by the
    // new output id. Because inputs always map below their consumers'
    // outputs in the new order only if the permutation is monotone on the
    // def-use chain, we re-sort and rely on validation to confirm.
    let mut gates: Vec<Gate> = circuit
        .gates()
        .iter()
        .map(|g| Gate {
            a: remap[g.a as usize],
            b: remap[g.b as usize],
            out: remap[g.out as usize],
            op: g.op,
        })
        .collect();
    gates.sort_by_key(|g| g.out);
    let outputs: Vec<WireId> = (num_wires - n_out..num_wires).collect();
    Circuit::new(circuit.garbler_inputs(), circuit.evaluator_inputs(), gates, outputs)
        .expect("renumbered circuit is valid")
}

fn parse_fields<const N: usize>(line: usize, text: &str) -> Result<[u32; N], CircuitError> {
    let mut result = [0u32; N];
    let mut tokens = text.split_whitespace();
    for slot in &mut result {
        *slot = next_number(line, &mut tokens)?;
    }
    Ok(result)
}

fn next_number<'a>(
    line: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<u32, CircuitError> {
    let token = tokens.next().ok_or_else(|| CircuitError::Parse {
        line,
        message: "unexpected end of line".to_string(),
    })?;
    token.parse().map_err(|_| CircuitError::Parse {
        line,
        message: format!("expected a number, got {token:?}"),
    })
}

fn expect_op<'a>(
    line: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
    expected: &str,
) -> Result<(), CircuitError> {
    match tokens.next() {
        Some(op) if op == expected => Ok(()),
        Some(op) => {
            Err(CircuitError::Parse { line, message: format!("expected {expected}, got {op:?}") })
        }
        None => Err(CircuitError::Parse { line, message: "missing gate kind".to_string() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "3 7\n2 2 1\n\n2 1 0 1 4 AND\n2 1 2 3 5 XOR\n2 1 4 5 6 AND\n";

    #[test]
    fn parse_sample() {
        let c = parse(SAMPLE).unwrap();
        assert_eq!(c.num_gates(), 3);
        assert_eq!(c.garbler_inputs(), 2);
        assert_eq!(c.evaluator_inputs(), 2);
        assert_eq!(c.outputs(), &[6]);
        // out = (g0 & g1) & (e0 ^ e1)
        assert_eq!(c.eval(&[true, true], &[true, false]).unwrap(), vec![true]);
        assert_eq!(c.eval(&[true, false], &[true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn parse_inv() {
        let text = "2 4\n1 1 2\n1 1 0 2 INV\n2 1 2 1 3 XOR\n";
        let c = parse(text).unwrap();
        assert_eq!(c.eval(&[false], &[false]).unwrap(), vec![true, true]);
    }

    #[test]
    fn roundtrip_canonical() {
        let c = parse(SAMPLE).unwrap();
        let text = write(&c);
        let c2 = parse(&text).unwrap();
        for bits in 0..16u32 {
            let g = [(bits & 1) != 0, (bits & 2) != 0];
            let e = [(bits & 4) != 0, (bits & 8) != 0];
            assert_eq!(c.eval(&g, &e).unwrap(), c2.eval(&g, &e).unwrap());
        }
    }

    #[test]
    fn write_noncanonical_outputs() {
        // Output is a middle wire — the writer must renumber.
        let c = Circuit::new(
            1,
            1,
            vec![Gate::new(GateOp::And, 0, 1, 2), Gate::new(GateOp::Xor, 0, 1, 3)],
            vec![2],
        )
        .unwrap();
        let text = write(&c);
        let c2 = parse(&text).unwrap();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(c.eval(&[a], &[b]).unwrap(), c2.eval(&[a], &[b]).unwrap());
        }
    }

    #[test]
    fn parse_error_reports_line() {
        let err = parse("1 3\n1 1 1\n2 1 0 1 2 NAND\n").unwrap_err();
        match err {
            CircuitError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_gate_count_mismatch() {
        assert!(parse("2 3\n1 1 1\n2 1 0 1 2 AND\n").is_err());
    }

    #[test]
    fn parse_rejects_wire_count_mismatch() {
        assert!(matches!(
            parse("1 9\n1 1 1\n2 1 0 1 2 AND\n").unwrap_err(),
            CircuitError::WireCountMismatch { .. }
        ));
    }
}
