//! Pipelined ≡ serial, slab ≡ HashMap: the rebuilt streaming layer must
//! put **bit-identical bytes on the wire** and decode the plaintext
//! reference for every VIP-Bench workload, every transport, and every
//! chunk granularity.
//!
//! The matrix per workload:
//! - label store: slot-slab (plan-driven) vs liveness-retired HashMap;
//! - session pipeline: overlapped compute/I/O stages vs the serial loop;
//! - transport: in-process `MemChannel` and real TCP loopback;
//! - chunk sizes: 1, window/2 (the default slide granularity), the full
//!   window, and a single chunk larger than the whole table stream.
//!
//! Byte identity is checked by recording every byte the garbler hands
//! the transport and comparing across variants; the maximally different
//! pair (serial+HashMap vs pipelined+slab) must agree exactly.

use std::io;

use haac::prelude::*;
use haac_runtime::{run_evaluator_with, run_garbler, ChannelStats, RuntimeError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Wraps a channel and keeps a copy of every byte sent through it.
struct RecordingChannel<C: Channel> {
    inner: C,
    sent: Vec<u8>,
}

impl<C: Channel> Channel for RecordingChannel<C> {
    fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.sent.extend_from_slice(bytes);
        self.inner.send(bytes)
    }
    fn recv_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.inner.recv_exact(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
    fn stats(&self) -> ChannelStats {
        self.inner.stats()
    }
}

/// Runs one full in-process session with the garbler's transport
/// recorded; both sides use `config`. Returns the garbler's transcript
/// bytes plus both reports.
fn run_recorded(
    workload: &haac::workloads::Workload,
    config: &SessionConfig,
    seed: u64,
) -> Result<(Vec<u8>, SessionReport, SessionReport), RuntimeError> {
    let (gc, mut ec) = MemChannel::pair();
    let mut gc = RecordingChannel { inner: gc, sent: Vec::new() };
    let (g, e) = std::thread::scope(|scope| {
        let garbler = scope.spawn(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            run_garbler(&workload.circuit, &workload.garbler_bits, &mut rng, config, &mut gc)
        });
        let evaluator = scope.spawn(|| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
            run_evaluator_with(
                &workload.circuit,
                &workload.evaluator_bits,
                &mut rng,
                config,
                &mut ec,
            )
        });
        let g = garbler.join().expect("garbler thread panicked");
        let e = evaluator.join().expect("evaluator thread panicked");
        (g, e)
    });
    Ok((gc.sent, g?, e?))
}

/// The four chunk granularities the suite sweeps for a workload.
fn chunk_sizes(config: &SessionConfig, and_gates: usize) -> [usize; 4] {
    [
        1,
        (config.window.half() as usize).max(2),
        (config.window.sww_wires() as usize).max(2),
        and_gates + 7, // strictly more tables than exist: one giant chunk
    ]
}

#[test]
fn pipelined_slab_sessions_are_wire_identical_to_serial_hashmap_sessions() {
    for kind in WorkloadKind::ALL {
        let w = build_workload(kind, Scale::Small);
        let seed = 0xA11CE + kind as u64;
        let slab = SessionConfig::for_circuit(&w.circuit);
        // Same window/scheme/chunking, but raw-circuit HashMap store and
        // the strictly alternating loop — the maximally different path.
        let hashmap = SessionConfig::new(slab.scheme, slab.window).with_pipeline(false);
        for chunk in chunk_sizes(&slab, w.circuit.num_and_gates()) {
            let pipelined = slab.clone().with_chunk_tables(chunk);
            let serial = hashmap.clone().with_chunk_tables(chunk);
            let (bytes_a, ga, ea) = run_recorded(&w, &pipelined, seed).unwrap();
            let (bytes_b, gb, eb) = run_recorded(&w, &serial, seed).unwrap();
            assert_eq!(
                bytes_a,
                bytes_b,
                "{} chunk={chunk}: transcripts must be bit-identical",
                kind.name()
            );
            assert_eq!(ga.outputs, w.expected, "{} chunk={chunk}", kind.name());
            assert_eq!(ea.outputs, w.expected, "{} chunk={chunk}", kind.name());
            assert_eq!(gb.outputs, w.expected, "{} chunk={chunk}", kind.name());
            assert_eq!(ga.tables, gb.tables);
            assert_eq!(ga.table_chunks, gb.table_chunks);
            assert_eq!(ga.flushes, gb.flushes);
            assert_eq!(ea.tables, eb.tables, "{} chunk={chunk}", kind.name());
            assert_eq!(ea.table_chunks, eb.table_chunks, "{} chunk={chunk}", kind.name());
            // The two stores agree on the streaming residency too.
            assert_eq!(ga.peak_live_wires, gb.peak_live_wires, "{}", kind.name());
            // Serial sessions must never claim overlap.
            assert_eq!(gb.overlap_ratio, 0.0);
        }
    }
}

#[test]
fn tcp_loopback_matches_mem_channel_for_every_workload() {
    for kind in WorkloadKind::ALL {
        let w = build_workload(kind, Scale::Small);
        let seed = 0xBEEF + kind as u64;
        // Force a many-chunk stream so the pipelined path genuinely
        // interleaves compute with socket I/O.
        let chunk = (w.circuit.num_and_gates() / 8).max(1);
        let config = SessionConfig::for_circuit(&w.circuit).with_chunk_tables(chunk);
        let (g_tcp, e_tcp) =
            run_tcp_session(&w.circuit, &w.garbler_bits, &w.evaluator_bits, seed, &config)
                .unwrap_or_else(|e| panic!("{}: tcp session failed: {e}", kind.name()));
        let (g_mem, e_mem) =
            run_local_session(&w.circuit, &w.garbler_bits, &w.evaluator_bits, seed, &config)
                .unwrap();
        assert_eq!(g_tcp.outputs, w.expected, "{}", kind.name());
        assert_eq!(e_tcp.outputs, w.expected, "{}", kind.name());
        // The transcript must not depend on the transport.
        assert_eq!(g_tcp.bytes_sent, g_mem.bytes_sent, "{}", kind.name());
        assert_eq!(g_tcp.bytes_received, g_mem.bytes_received, "{}", kind.name());
        assert_eq!(g_tcp.table_chunks, g_mem.table_chunks, "{}", kind.name());
        assert_eq!(e_tcp.tables, e_mem.tables, "{}", kind.name());
        // Overlap accounting is well-formed on a real socket.
        for report in [&g_tcp, &e_tcp] {
            assert!(
                (0.0..=1.0).contains(&report.overlap_ratio),
                "{}: overlap {} out of range",
                kind.name(),
                report.overlap_ratio
            );
            assert!(report.compute_ns > 0, "{}: unmetered compute", kind.name());
        }
    }
}

#[test]
fn serial_tcp_session_still_agrees_with_plaintext() {
    let w = build_workload(WorkloadKind::Hamming, Scale::Small);
    let config = SessionConfig::for_circuit(&w.circuit)
        .with_pipeline(false)
        .with_chunk_tables((w.circuit.num_and_gates() / 4).max(1));
    let (g, e) =
        run_tcp_session(&w.circuit, &w.garbler_bits, &w.evaluator_bits, 4242, &config).unwrap();
    assert_eq!(g.outputs, w.expected);
    assert_eq!(e.outputs, w.expected);
    assert_eq!(g.overlap_ratio, 0.0);
    assert_eq!(e.overlap_ratio, 0.0);
}

#[test]
fn slab_garblers_stream_identical_tables_on_every_workload() {
    // The store-level half of the acceptance bar, without any
    // transport: slab and HashMap garblers emit the same chunks and the
    // same decode string for all eight workloads.
    use haac_core::lower_for_streaming;
    use haac_gc::StreamingGarbler;

    for kind in WorkloadKind::ALL {
        let w = build_workload(kind, Scale::Small);
        let plan = lower_for_streaming(&w.circuit);
        let mut rng1 = StdRng::seed_from_u64(7 + kind as u64);
        let mut rng2 = StdRng::seed_from_u64(7 + kind as u64);
        let mut live = StreamingGarbler::new(&w.circuit, &mut rng1, HashScheme::Rekeyed);
        let mut slab = StreamingGarbler::with_plan(&plan.program, &mut rng2, HashScheme::Rekeyed);
        loop {
            let a = live.next_tables(509);
            let b = slab.next_tables(509);
            assert_eq!(a, b, "{}", kind.name());
            if a.is_none() {
                break;
            }
        }
        let lf = live.finish();
        let sf = slab.finish();
        assert_eq!(lf.output_decode, sf.output_decode, "{}", kind.name());
        assert_eq!(lf.crypto, sf.crypto, "{}", kind.name());
        assert_eq!(lf.peak_live_wires, sf.peak_live_wires, "{}", kind.name());
    }
}
