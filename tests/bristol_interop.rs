//! Netlist-interchange integration tests: the Bristol path a real user
//! would take (EMP emits Bristol, HAAC consumes it).

use haac::circuit::{aes_circuit, bristol, opt};
use haac::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn aes128_survives_bristol_roundtrip_with_fips_vector() {
    let circuit = aes_circuit::aes128_circuit().unwrap();
    let text = bristol::write(&circuit);
    let reparsed = bristol::parse(&text).unwrap();

    let key = aes_circuit::bytes_to_bits(&[
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
        0x0f,
    ]);
    let pt = aes_circuit::bytes_to_bits(&[
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee,
        0xff,
    ]);
    let out = reparsed.eval(&key, &pt).unwrap();
    assert_eq!(
        aes_circuit::bits_to_bytes(&out),
        vec![
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a
        ]
    );
}

#[test]
fn parsed_bristol_compiles_and_garbles_on_haac() {
    // A hand-written Bristol netlist: out = (g0 AND e0) XOR (NOT g1).
    let text = "3 7\n2 2 1\n\n2 1 0 2 4 AND\n1 1 1 5 INV\n2 1 4 5 6 XOR\n";
    let circuit = bristol::parse(text).unwrap();
    let window = WindowModel::new(8);
    let (lowered, _) = compile(&circuit, ReorderKind::Full, window);
    let mut rng = StdRng::seed_from_u64(77);
    for bits in 0..16u32 {
        let g = vec![bits & 1 != 0, bits & 2 != 0];
        let e = vec![bits & 4 != 0, bits & 8 != 0];
        let expect = circuit.eval(&g, &e).unwrap();
        let got = run_gc_through_streams(&lowered, window, &g, &e, &mut rng, HashScheme::Rekeyed)
            .unwrap();
        assert_eq!(got, expect, "input pattern {bits:#06b}");
    }
}

#[test]
fn pruned_workload_still_verifies_end_to_end() {
    let w = build_workload(WorkloadKind::DotProduct, Scale::Small);
    let report = opt::prune(&w.circuit);
    let out = report.circuit.eval(&w.garbler_bits, &w.evaluator_bits).unwrap();
    assert_eq!(out, w.expected);
    // Workload generators are already lean; pruning must not grow them.
    assert!(report.circuit.num_gates() <= w.circuit.num_gates());
}

#[test]
fn instruction_streams_roundtrip_through_binary_encoding() {
    use haac::core::Program;
    let w = build_workload(WorkloadKind::Relu, Scale::Small);
    let window = WindowModel::new(1024);
    let (lowered, _) = compile(&w.circuit, ReorderKind::Segment, window);
    let bytes = lowered.program.encode(window.sww_wires());
    let decoded = Program::decode_instructions(
        &bytes,
        window.sww_wires(),
        lowered.program.first_output_addr(),
    )
    .unwrap();
    assert_eq!(decoded, lowered.program.instructions);
}
