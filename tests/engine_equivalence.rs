//! Multi-engine garbling must be a pure throughput optimization: for
//! every VIP-Bench workload and any engine count, the transcript —
//! Δ, every wire's zero label, every garbled table, the decode string —
//! is bit-identical to single-engine garbling, exactly as HAAC's
//! parallel gate engines are architecturally invisible to the evaluator.

use haac::gc::{garble, garble_parallel, EngineConfig, HashScheme};
use haac::workloads::{build, Scale, WorkloadKind};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn multi_engine_transcripts_match_single_engine_on_all_workloads() {
    for kind in WorkloadKind::ALL {
        let w = build(kind, Scale::Small);
        let seed = 0xE26 ^ kind.name().len() as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let reference = garble(&w.circuit, &mut rng, HashScheme::Rekeyed);

        for engines in [1usize, 4] {
            let window = haac::core::WindowModel::new(4096);
            let config = EngineConfig::new(engines, window.gate_lookahead());
            let mut rng = StdRng::seed_from_u64(seed);
            let parallel = garble_parallel(&w.circuit, &mut rng, HashScheme::Rekeyed, &config);
            assert_eq!(parallel.delta, reference.delta, "{} e={engines}", kind.name());
            assert_eq!(
                parallel.wire_zero_labels,
                reference.wire_zero_labels,
                "{} e={engines}",
                kind.name()
            );
            assert_eq!(
                parallel.garbled.tables,
                reference.garbled.tables,
                "{} e={engines}",
                kind.name()
            );
            assert_eq!(
                parallel.garbled.output_decode,
                reference.garbled.output_decode,
                "{} e={engines}",
                kind.name()
            );
            assert_eq!(parallel.crypto, reference.crypto, "{} e={engines}", kind.name());
        }
    }
}

#[test]
fn parallel_garbling_still_evaluates_correctly() {
    // End-to-end sanity on one workload: a parallel-garbled circuit
    // decodes to the plaintext reference through the normal evaluator.
    let w = build(WorkloadKind::Hamming, Scale::Small);
    let mut rng = StdRng::seed_from_u64(77);
    let g = garble_parallel(&w.circuit, &mut rng, HashScheme::Rekeyed, &EngineConfig::new(4, 8192));
    let inputs = g.encode_inputs(&w.circuit, &w.garbler_bits, &w.evaluator_bits);
    let out = haac::gc::evaluate(&w.circuit, &g.garbled.tables, &inputs, HashScheme::Rekeyed);
    let decoded = haac::gc::decode_outputs(&out, &g.garbled.output_decode);
    assert_eq!(decoded, w.expected);
}

#[test]
fn shared_pool_transcripts_match_single_engine_on_all_workloads() {
    // One persistent EnginePool garbles every VIP workload in turn —
    // the multi-session server's execution model — and each transcript
    // must still be bit-identical to single-engine garbling of the raw
    // netlist. The pool path is plan-driven now (baseline slab), whose
    // slice length comes from the plan's static window bound: no
    // per-call lookahead sizing.
    let pool = haac::gc::EnginePool::new(4);
    for kind in WorkloadKind::ALL {
        let w = build(kind, Scale::Small);
        let seed = 0xE27 ^ kind.name().len() as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let reference = garble(&w.circuit, &mut rng, HashScheme::Rekeyed);
        let mut rng = StdRng::seed_from_u64(seed);
        let pooled = haac::gc::garble_parallel_in(&w.circuit, &mut rng, HashScheme::Rekeyed, &pool);
        assert_eq!(pooled.delta, reference.delta, "{}", kind.name());
        assert_eq!(pooled.tables, reference.garbled.tables, "{}", kind.name());
        assert_eq!(pooled.output_decode, reference.garbled.output_decode, "{}", kind.name());
        assert_eq!(pooled.crypto, reference.crypto, "{}", kind.name());
        let input_zero = &reference.wire_zero_labels[..w.circuit.num_inputs() as usize];
        assert_eq!(pooled.input_zero_labels, input_zero, "{}", kind.name());
    }
}
