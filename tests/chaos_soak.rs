//! Chaos soak: the serving stack under deterministic fault injection.
//!
//! The failure model is exercised end to end through [`FaultChannel`]:
//! injected delays must be absorbed (sessions still succeed, outputs
//! still bit-identical to the plaintext reference), corruption must
//! fail *loudly* (the crypto or the reference check catches it — never
//! a silently wrong answer), and disconnects at arbitrary message
//! boundaries must end as typed, prompt failures that leave the
//! registry drained and the pool serving. A proptest sweeps random cut
//! points on top of the deterministic matrix.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use haac::server::{client, Server, ServerConfig, SessionRequest};
use haac::workloads::{Scale, WorkloadKind};
use haac_runtime::{FaultChannel, FaultSpec, SessionDeadlines};
use proptest::prelude::*;

/// The soak's workload mix: a linear-algebra VIP, a compare-heavy VIP,
/// and a nonlinear one.
const MATRIX: [WorkloadKind; 3] =
    [WorkloadKind::DotProduct, WorkloadKind::Hamming, WorkloadKind::Relu];

fn chaos_server(workers: usize) -> Server {
    Server::new(ServerConfig {
        workers,
        deadlines: SessionDeadlines {
            handshake: Some(Duration::from_secs(5)),
            ot: Some(Duration::from_secs(5)),
            chunk: Some(Duration::from_secs(5)),
        },
        ..ServerConfig::default()
    })
}

/// Client-side message-boundary count of one clean session per matrix
/// workload, calibrated once (the sessions are deterministic, so the
/// count is a constant of the protocol, not of the run).
fn clean_ops(kind: WorkloadKind) -> u64 {
    static OPS: OnceLock<Vec<(WorkloadKind, u64)>> = OnceLock::new();
    let table = OPS.get_or_init(|| {
        let server = chaos_server(1);
        let counted = MATRIX
            .iter()
            .map(|&kind| {
                let (workload, config) = client::prepare(kind, Scale::Small);
                let request = SessionRequest::new(kind.name(), Scale::Small, 1);
                let mut channel = FaultChannel::new(server.connect(), FaultSpec::default(), 0);
                client::run_session_with(&mut channel, &request, &workload, &config)
                    .expect("calibration session must succeed");
                (kind, channel.ops())
            })
            .collect();
        server.shutdown();
        counted
    });
    table.iter().find(|(k, _)| *k == kind).expect("matrix workload").1
}

#[test]
fn chaos_matrix_delay_corrupt_disconnect_across_workloads() {
    let server = chaos_server(2);
    let mut expected_completed = 0u64;
    for (i, &kind) in MATRIX.iter().enumerate() {
        let (workload, config) = client::prepare(kind, Scale::Small);
        let request = SessionRequest::new(kind.name(), Scale::Small, 40 + i as u64);
        let ops = clean_ops(kind);

        // Delays are benign: the protocol absorbs them and the outputs
        // still match the plaintext reference.
        let mut delayed =
            FaultChannel::new(server.connect(), FaultSpec::delays(5, 2), 100 + i as u64);
        client::run_session_with(&mut delayed, &request, &workload, &config)
            .unwrap_or_else(|e| panic!("{kind:?}: delays must be absorbed, got {e}"));
        expected_completed += 1;

        // Corruption fails loudly: one flipped bit in the client's
        // first OT flush must surface as a typed error somewhere in
        // the session — never as a silently wrong answer.
        let mut corrupted =
            FaultChannel::new(server.connect(), FaultSpec::corrupt(1), 200 + i as u64);
        let err = client::run_session_with(&mut corrupted, &request, &workload, &config)
            .expect_err("corruption must be caught");
        assert!(!err.to_string().is_empty(), "{kind:?}");

        // A mid-session disconnect is a typed, prompt failure.
        let start = Instant::now();
        let mut cut =
            FaultChannel::new(server.connect(), FaultSpec::cut_at_op(ops / 2), 300 + i as u64);
        let err = client::run_session_with(&mut cut, &request, &workload, &config)
            .expect_err("a cut session must fail");
        assert!(cut.is_cut(), "{kind:?}: the cut never fired");
        assert!(!err.to_string().is_empty(), "{kind:?}");
        assert!(start.elapsed() < Duration::from_secs(20), "{kind:?}: failure must be prompt");
    }

    // After the full matrix: registry drained, no panics, and the
    // server still serves every matrix workload cleanly.
    assert!(server.registry().wait_drained(Duration::from_secs(60)));
    for outcome in server.registry().outcomes() {
        if let Err(failure) = &outcome.result {
            assert!(!failure.contains("panicked"), "no session may panic: {failure}");
        }
    }
    for (i, &kind) in MATRIX.iter().enumerate() {
        let (workload, config) = client::prepare(kind, Scale::Small);
        let request = SessionRequest::new(kind.name(), Scale::Small, 400 + i as u64);
        let mut channel = server.connect();
        client::run_session_with(&mut channel, &request, &workload, &config)
            .unwrap_or_else(|e| panic!("{kind:?}: server must keep serving after chaos, got {e}"));
        expected_completed += 1;
    }
    assert!(server.registry().wait_drained(Duration::from_secs(60)));
    let report = server.shutdown();
    assert_eq!(report.completed, expected_completed);
    assert_eq!(report.active, 0, "registry must end empty");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Disconnect at a *random* message boundary of a random matrix
    /// workload: always a typed error on the client, never a hang, and
    /// the registry always drains empty.
    #[test]
    fn random_boundary_cuts_are_typed_and_drain(
        kind_idx in 0usize..MATRIX.len(),
        cut_pick in 0u32..10_000,
        seed in any::<u64>(),
    ) {
        let kind = MATRIX[kind_idx];
        let cut = u64::from(cut_pick) % clean_ops(kind);
        let server = chaos_server(1);
        let (workload, config) = client::prepare(kind, Scale::Small);
        let request = SessionRequest::new(kind.name(), Scale::Small, seed);
        let start = Instant::now();
        let mut channel =
            FaultChannel::new(server.connect(), FaultSpec::cut_at_op(cut), seed);
        let result = client::run_session_with(&mut channel, &request, &workload, &config);
        prop_assert!(result.is_err(), "cut {cut} must fail the session");
        prop_assert!(channel.is_cut(), "cut {cut} never fired");
        prop_assert!(
            start.elapsed() < Duration::from_secs(20),
            "cut {cut} took {:?} — deadlines must bound the failure",
            start.elapsed()
        );
        // Hang up the client end so the server sees the disconnect now
        // rather than waiting out its per-phase deadline.
        drop(channel);
        prop_assert!(
            server.registry().wait_drained(Duration::from_secs(30)),
            "the cut session must be reaped"
        );
        let report = server.shutdown();
        prop_assert_eq!(report.active, 0, "registry must drain empty");
        prop_assert_eq!(report.completed, 0);
    }
}
