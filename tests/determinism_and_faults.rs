//! Determinism and fault-injection tests.
//!
//! The paper's co-design depends on determinism ("performance is
//! deterministic", §6.2 — the compiler can pick the best schedule ahead
//! of time) and on the crypto failing *loudly* when streams are
//! corrupted. Both properties are load-bearing; both are pinned here.

use haac::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn simulation_is_bit_deterministic() {
    let w = build_workload(WorkloadKind::MatMult, Scale::Small);
    let config = HaacConfig { num_ges: 4, sww_bytes: 8192, ..HaacConfig::default() };
    let (lowered, _) = compile(&w.circuit, ReorderKind::Full, config.window());
    let a = map_and_simulate(&lowered, &config);
    let b = map_and_simulate(&lowered, &config);
    assert_eq!(a, b, "two identical simulations must agree exactly");
}

#[test]
fn compilation_is_deterministic() {
    let w = build_workload(WorkloadKind::Mersenne, Scale::Small);
    let window = WindowModel::new(512);
    let (a, sa) = compile(&w.circuit, ReorderKind::Segment, window);
    let (b, sb) = compile(&w.circuit, ReorderKind::Segment, window);
    assert_eq!(a.program, b.program);
    assert_eq!(a.oor_addrs, b.oor_addrs);
    assert_eq!(sa, sb);
}

#[test]
fn same_seed_same_garbling_different_seed_different_labels() {
    let w = build_workload(WorkloadKind::Relu, Scale::Small);
    let g1 = garble(&w.circuit, &mut StdRng::seed_from_u64(1), HashScheme::Rekeyed);
    let g2 = garble(&w.circuit, &mut StdRng::seed_from_u64(1), HashScheme::Rekeyed);
    let g3 = garble(&w.circuit, &mut StdRng::seed_from_u64(2), HashScheme::Rekeyed);
    assert_eq!(g1.garbled, g2.garbled);
    assert_ne!(g1.wire_zero_labels, g3.wire_zero_labels);
}

#[test]
fn wrong_input_label_corrupts_the_result() {
    // Feeding the evaluator a label that encodes the wrong bit must not
    // silently decode to the right answer.
    let mut b = Builder::new();
    let x = b.input_garbler(8);
    let y = b.input_evaluator(8);
    let (s, _) = b.add_words(&x, &y);
    let c = b.finish(s).unwrap();

    let mut rng = StdRng::seed_from_u64(9);
    let garbling = garble(&c, &mut rng, HashScheme::Rekeyed);
    let g_bits = to_bits(100, 8);
    let e_bits = to_bits(23, 8);
    let mut labels = garbling.encode_inputs(&c, &g_bits, &e_bits);
    // Flip evaluator bit 0 by switching to the complementary label.
    labels[8] ^= garbling.delta.block();
    let out = evaluate(&c, &garbling.garbled.tables, &labels, HashScheme::Rekeyed);
    let decoded = decode_outputs(&out, &garbling.garbled.output_decode);
    assert_eq!(from_bits(&decoded), 100 + 22, "flipped input bit must flip the sum's lsb");
}

#[test]
fn truncated_oor_stream_fails_loudly() {
    let w = build_workload(WorkloadKind::DotProduct, Scale::Small);
    let window = WindowModel::new(16);
    let (mut lowered, stats) = compile(&w.circuit, ReorderKind::Full, window);
    assert!(stats.oor_count > 0, "tiny window must force OoR reads");
    // Drop one OoR address from the stream: execution must error, not
    // silently misread.
    let victim = lowered
        .oor_addrs
        .iter()
        .position(|v| !v.is_empty())
        .expect("some instruction has OoR reads");
    lowered.oor_addrs[victim].pop();
    let mut rng = StdRng::seed_from_u64(4);
    let result = run_gc_through_streams(
        &lowered,
        window,
        &w.garbler_bits,
        &w.evaluator_bits,
        &mut rng,
        HashScheme::Rekeyed,
    );
    assert!(result.is_err(), "a truncated OoRW stream must be detected");
}
