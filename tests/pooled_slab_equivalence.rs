//! The acceptance matrix of the pooled-slab refactor: pooled wave
//! garbling of the renamed stream must be **wire-bit-identical** to the
//! single-engine slab path across all 8 VIP workloads × {Baseline,
//! Full, Segment} reorders × engine counts {1, 2, 4}.
//!
//! Every configuration shares one `SlotProgram` contract: the compiled
//! plan is the single artifact feeding the streaming executors, the
//! pooled engines, and (through the session layer) both protocol
//! parties — so equality here is equality of the compiled artifact's
//! semantics, not of one code path with itself.

use haac::core::{lower_with_reorder, ReorderKind};
use haac::gc::{garble_plan_in, EnginePool, HashScheme, StreamingEvaluator, StreamingGarbler};
use haac::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

const REORDERS: [ReorderKind; 3] = [ReorderKind::Baseline, ReorderKind::Full, ReorderKind::Segment];

#[test]
fn pooled_garbling_is_bit_identical_to_the_streaming_slab_path() {
    // One persistent pool per engine count, reused across every
    // workload and reorder — the server's execution model.
    let pools: Vec<EnginePool> = [1usize, 2, 4].into_iter().map(EnginePool::new).collect();
    for kind in WorkloadKind::ALL {
        let w = build_workload(kind, Scale::Small);
        for reorder in REORDERS {
            let plan = lower_with_reorder(&w.circuit, reorder);
            assert_eq!(plan.reorder, reorder);
            let seed = 0x90a + kind as u64 * 31 + reorder as u64;

            // Single-engine slab reference: the streaming garbler run
            // to completion.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut single =
                StreamingGarbler::with_plan(&plan.program, &mut rng, HashScheme::Rekeyed);
            let delta = single.delta();
            let mut reference = Vec::new();
            while let Some(chunk) = single.next_tables(1013) {
                reference.extend(chunk);
            }
            let finish = single.finish();

            for pool in &pools {
                let mut rng = StdRng::seed_from_u64(seed);
                let pooled = garble_plan_in(&plan.program, &mut rng, HashScheme::Rekeyed, pool);
                let tag = format!("{} {:?} e={}", kind.name(), reorder, pool.engines());
                assert_eq!(pooled.delta, delta, "{tag}");
                assert_eq!(pooled.tables, reference, "{tag}");
                assert_eq!(pooled.output_decode, finish.output_decode, "{tag}");
                assert_eq!(pooled.crypto, finish.crypto, "{tag}");
            }
        }
    }
}

#[test]
fn pooled_reordered_garblings_evaluate_to_the_plaintext_reference() {
    // End-to-end: a pooled garbling under each reorder decodes to the
    // plaintext reference through the slab evaluator driven by the
    // same plan.
    let pool = EnginePool::new(4);
    for kind in [WorkloadKind::Hamming, WorkloadKind::DotProduct, WorkloadKind::Relu] {
        let w = build_workload(kind, Scale::Small);
        for reorder in REORDERS {
            let plan = lower_with_reorder(&w.circuit, reorder);
            let mut rng = StdRng::seed_from_u64(0xE2E + reorder as u64);
            let pooled = garble_plan_in(&plan.program, &mut rng, HashScheme::Rekeyed, &pool);
            let inputs = pooled.encode_inputs(&w.garbler_bits, &w.evaluator_bits);
            let mut evaluator =
                StreamingEvaluator::with_plan(&plan.program, inputs, HashScheme::Rekeyed);
            evaluator.feed(&pooled.tables);
            let finish = evaluator.finish(&pooled.output_decode);
            assert_eq!(finish.outputs, w.expected, "{} {:?}", kind.name(), reorder);
        }
    }
}

#[test]
fn reordered_sessions_run_end_to_end_with_negotiated_schedules() {
    // The tentpole's session half: real two-party sessions on the
    // ILP-friendly orders, both parties lowering from the negotiated
    // ReorderKind in the header.
    for kind in WorkloadKind::ALL {
        let w = build_workload(kind, Scale::Small);
        for reorder in REORDERS {
            let config = SessionConfig::for_circuit_with(&w.circuit, reorder);
            assert_eq!(config.reorder(), reorder);
            let (g, e) = run_local_session(
                &w.circuit,
                &w.garbler_bits,
                &w.evaluator_bits,
                0x5e55 + reorder as u64,
                &config,
            )
            .unwrap_or_else(|err| panic!("{} {:?}: {err}", kind.name(), reorder));
            assert_eq!(g.outputs, w.expected, "{} {:?}", kind.name(), reorder);
            assert_eq!(e.outputs, w.expected, "{} {:?}", kind.name(), reorder);
            assert_eq!(g.tables, w.circuit.num_and_gates() as u64);
            assert!(e.within_window, "{} {:?}", kind.name(), reorder);
        }
    }
}

#[test]
fn reorder_disagreement_is_a_typed_refusal_not_a_divergence() {
    use haac_runtime::{run_evaluator_with, run_garbler, MemChannel};

    let w = build_workload(WorkloadKind::DotProduct, Scale::Small);
    let garbler_config = SessionConfig::for_circuit_with(&w.circuit, ReorderKind::Full);
    let evaluator_config = SessionConfig::for_circuit_with(&w.circuit, ReorderKind::Segment);
    // The channel halves are *moved* into the threads so the refusing
    // side's hangup is visible to its peer.
    let (mut gc, mut ec) = MemChannel::pair();
    std::thread::scope(|scope| {
        let garbler = scope.spawn({
            let (w, config) = (&w, &garbler_config);
            move || {
                let mut rng = StdRng::seed_from_u64(1);
                run_garbler(&w.circuit, &w.garbler_bits, &mut rng, config, &mut gc)
            }
        });
        let evaluator = scope.spawn({
            let (w, config) = (&w, &evaluator_config);
            move || {
                let mut rng = StdRng::seed_from_u64(2);
                run_evaluator_with(&w.circuit, &w.evaluator_bits, &mut rng, config, &mut ec)
            }
        });
        let eval_err = evaluator.join().unwrap().unwrap_err();
        assert!(eval_err.to_string().contains("reorder mismatch"), "{eval_err}");
        // The garbler sees the hangup, not a hung stream.
        assert!(garbler.join().unwrap().is_err());
    });
}
