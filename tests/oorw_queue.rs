//! The software OoRW queue: deliberately small slab windows must
//! stream adversarial wire-distance circuits **bit-identically** to the
//! naturally sized slab, in O(window + queue) memory, with queue
//! occupancy never exceeding the plan's static bound.

use haac::core::{lower_for_streaming, lower_with_window, ReorderKind, WindowModel};
use haac::gc::{HashScheme, StreamingEvaluator, StreamingGarbler};
use haac::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// An adversarial skip-connection circuit: a handful of early wires are
/// re-read at ever-growing distances while a long local chain keeps the
/// address frontier marching — the wire-distance profile renaming
/// cannot compact and a small window cannot hold.
fn skip_connection_circuit(chain: usize, skip_every: usize) -> Circuit {
    let mut b = Builder::new();
    let x = b.input_garbler(4);
    let y = b.input_evaluator(4);
    let anchors: Vec<_> = x.iter().zip(&y).map(|(&a, &c)| b.xor(a, c)).collect();
    let mut acc = b.and(anchors[0], anchors[1]);
    for i in 0..chain {
        // Local work (keeps distances small)...
        acc = b.xor(acc, anchors[(i + 1) % anchors.len()]);
        let t = b.and(acc, anchors[i % anchors.len()]);
        // ...with a periodic long skip back to the very first anchors.
        acc = if i % skip_every == 0 { b.xor(t, anchors[0]) } else { t };
    }
    let mut outs = vec![acc];
    outs.push(anchors[2]); // an early wire that is also a circuit output
    b.finish(outs).unwrap()
}

/// Streams a garbling + evaluation of `plan`, returning the full table
/// stream, the decode string, and both finishes.
#[allow(clippy::type_complexity)]
fn run_plan(
    plan: &haac::core::StreamingPlan,
    g_bits: &[bool],
    e_bits: &[bool],
    seed: u64,
    chunk: usize,
) -> (Vec<[haac::gc::Block; 2]>, Vec<bool>, haac::gc::GarblerFinish, haac::gc::EvaluatorFinish) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut garbler = StreamingGarbler::with_plan(&plan.program, &mut rng, HashScheme::Rekeyed);
    let inputs = garbler.encode_inputs(g_bits, e_bits);
    let mut evaluator = StreamingEvaluator::with_plan(&plan.program, inputs, HashScheme::Rekeyed);
    let mut tables = Vec::new();
    while let Some(chunk_tables) = garbler.next_tables(chunk) {
        evaluator.feed(&chunk_tables);
        tables.extend(chunk_tables);
    }
    let gfin = garbler.finish();
    let efin = evaluator.finish(&gfin.output_decode);
    (tables, gfin.output_decode.clone(), gfin, efin)
}

#[test]
fn tiny_window_streams_are_wire_identical_to_the_big_slab() {
    let c = skip_connection_circuit(600, 7);
    let g_bits = [true, false, true, true];
    let e_bits = [false, true, true, false];
    let natural = lower_for_streaming(&c);
    assert!(!natural.program.has_oor());
    assert!(natural.window.sww_wires() > 8, "the skips must force a big natural window");

    let (big_tables, big_decode, big_g, _big_e) = run_plan(&natural, &g_bits, &e_bits, 0xF00D, 64);

    for window in [2u32, 4, 8, 16] {
        let plan = lower_with_window(&c, ReorderKind::Baseline, WindowModel::new(window));
        assert!(plan.program.has_oor(), "window {window} must spill");
        assert_eq!(plan.window.sww_wires(), window);
        let bound = plan.program.oor_queue_bound();
        assert!(bound > 0);
        assert!(bound <= plan.program.oor_read_count());

        for chunk in [1usize, 5, 64, 10_000] {
            let (tables, decode, gfin, efin) = run_plan(&plan, &g_bits, &e_bits, 0xF00D, chunk);
            // Bit-identical on the wire: same tables, same decode.
            assert_eq!(tables, big_tables, "w={window} chunk={chunk}");
            assert_eq!(decode, big_decode, "w={window} chunk={chunk}");
            assert_eq!(gfin.crypto, big_g.crypto, "w={window} chunk={chunk}");
            // Correct outputs, and the queue respected its static bound
            // on both sides.
            assert_eq!(efin.outputs, c.eval(&g_bits, &e_bits).unwrap(), "w={window}");
            assert!(gfin.oor_queue_peak > 0, "w={window}: the queue must have been used");
            assert!(
                gfin.oor_queue_peak <= bound,
                "w={window}: garbler queue peak {} exceeds the planned bound {bound}",
                gfin.oor_queue_peak
            );
            assert!(
                efin.oor_queue_peak <= bound,
                "w={window}: evaluator queue peak {} exceeds the planned bound {bound}",
                efin.oor_queue_peak
            );
            assert_eq!(gfin.oor_queue_peak, efin.oor_queue_peak, "both sides drain identically");
        }
    }
}

#[test]
fn vip_workloads_stream_through_forced_small_windows() {
    // Real workloads, windows forced to an eighth of natural: the OoRW
    // queue keeps transcripts identical and outputs correct. Scale
    // follows `HAAC_SCALE`, so the CI paper-scale smoke reruns this
    // exact invariant at millions of gates without a second test body.
    for kind in [WorkloadKind::Hamming, WorkloadKind::DotProduct, WorkloadKind::BubbleSort] {
        let w = build_workload(kind, Scale::from_env());
        let natural = lower_for_streaming(&w.circuit);
        let forced = WindowModel::new((natural.window.sww_wires() / 8).max(2));
        let plan = lower_with_window(&w.circuit, ReorderKind::Baseline, forced);
        if !plan.program.has_oor() {
            continue; // this workload's distances already fit; nothing to test
        }
        let (big_tables, big_decode, ..) =
            run_plan(&natural, &w.garbler_bits, &w.evaluator_bits, 0xBEE, 512);
        let (tables, decode, gfin, efin) =
            run_plan(&plan, &w.garbler_bits, &w.evaluator_bits, 0xBEE, 512);
        assert_eq!(tables, big_tables, "{}", kind.name());
        assert_eq!(decode, big_decode, "{}", kind.name());
        assert_eq!(efin.outputs, w.expected, "{}", kind.name());
        assert!(gfin.oor_queue_peak <= plan.program.oor_queue_bound(), "{}", kind.name());
        eprintln!(
            "{}: window {} → {} (slab labels), queue bound {} (peak {})",
            kind.name(),
            natural.window.sww_wires(),
            plan.window.sww_wires(),
            plan.program.oor_queue_bound(),
            gfin.oor_queue_peak
        );
    }
}

#[test]
fn dense_and_runs_with_in_run_oor_producers_stream_correctly() {
    // Consecutive AND gates where a later gate of the *same batch run*
    // reads an earlier one's output at a distance beyond a tiny
    // window: the OoRW entry is enqueued by a write that is itself
    // part of the batch, so the executor must break the run before the
    // consumer instead of popping an empty queue (regression test for
    // the use-before-def the batch scheduler had).
    // The gates of each group are mutually independent through their
    // *real* addresses (they read only primary inputs), so the batch
    // scheduler happily runs all of them as one wave — except that the
    // fourth gate reads the first one's output at distance 3, which a
    // 2-wire window rewrites to an OoRW sentinel. The producing write
    // is then part of the very batch the consumer sits in.
    let mut b = Builder::new();
    let x = b.input_garbler(2);
    let y = b.input_evaluator(2);
    let mut outs = Vec::new();
    for _ in 0..6 {
        let q0 = b.and(x[0], y[0]);
        let q1 = b.and(x[1], y[1]);
        let q2 = b.and(x[0], y[1]);
        let skip = b.and(x[1], q0); // distance 3: in-batch producer
        outs.extend([q1, q2, skip]);
    }
    let mut acc = outs[0];
    for &w in &outs[1..] {
        acc = b.xor(acc, w);
    }
    let c = b.finish(vec![acc]).unwrap();
    let g_bits = [true, true];
    let e_bits = [true, false];

    let natural = lower_for_streaming(&c);
    let (big_tables, big_decode, ..) = run_plan(&natural, &g_bits, &e_bits, 0xD0, 4096);
    for window in [2u32, 4] {
        let plan = lower_with_window(&c, ReorderKind::Baseline, WindowModel::new(window));
        assert!(plan.program.has_oor(), "w={window} must spill");
        for chunk in [1usize, 3, 4096] {
            let (tables, decode, gfin, efin) = run_plan(&plan, &g_bits, &e_bits, 0xD0, chunk);
            assert_eq!(tables, big_tables, "w={window} chunk={chunk}");
            assert_eq!(decode, big_decode, "w={window} chunk={chunk}");
            assert_eq!(efin.outputs, c.eval(&g_bits, &e_bits).unwrap(), "w={window}");
            assert!(gfin.oor_queue_peak <= plan.program.oor_queue_bound(), "w={window}");
        }
    }
}

#[test]
fn oorw_sessions_run_end_to_end_over_a_real_channel() {
    // A full two-party session driven by a forced-window plan: the
    // header announces the small window, both parties queue the same
    // OoR labels, and the outputs still decode to plaintext.
    let c = skip_connection_circuit(300, 5);
    let g_bits = [true, true, false, true];
    let e_bits = [true, false, false, true];
    let natural = lower_for_streaming(&c);
    let forced = WindowModel::new(8);
    let plan = lower_with_window(&c, ReorderKind::Baseline, forced);
    assert!(plan.program.has_oor());
    let config = SessionConfig::from_plan(HashScheme::Rekeyed, std::sync::Arc::new(plan));
    let (g, e) = run_local_session(&c, &g_bits, &e_bits, 77, &config).unwrap();
    assert_eq!(g.outputs, c.eval(&g_bits, &e_bits).unwrap());
    assert_eq!(e.outputs, g.outputs);

    // Same bytes as a session on the natural plan at equal chunking.
    let natural_config =
        SessionConfig::from_plan(HashScheme::Rekeyed, std::sync::Arc::new(natural))
            .with_chunk_tables(config.chunk_tables());
    let (gn, _) = run_local_session(&c, &g_bits, &e_bits, 77, &natural_config).unwrap();
    assert_eq!(g.tables, gn.tables);
    assert_eq!(g.bytes_sent, gn.bytes_sent, "table payloads must be byte-identical");
}
