//! Streaming ≡ monolithic: the runtime's streamed two-party sessions
//! must produce bit-identical results to the monolithic
//! `garble()`/`evaluate()` path for every VIP-Bench workload — while the
//! evaluator's live-wire memory stays bounded by the sliding-wire-window
//! size, not the circuit size.

use haac::prelude::*;
use haac_gc::stream::Liveness;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Monolithic reference: garble everything, evaluate everything.
fn monolithic_outputs(w: &haac::workloads::Workload, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    let garbling = garble(&w.circuit, &mut rng, HashScheme::Rekeyed);
    let inputs = garbling.encode_inputs(&w.circuit, &w.garbler_bits, &w.evaluator_bits);
    let out = evaluate(&w.circuit, &garbling.garbled.tables, &inputs, HashScheme::Rekeyed);
    decode_outputs(&out, &garbling.garbled.output_decode)
}

#[test]
fn every_workload_streams_identically_to_monolithic() {
    for kind in WorkloadKind::ALL {
        let seed = 0xCAFE + kind as u64;
        let w = build_workload(kind, Scale::Small);
        let reference = monolithic_outputs(&w, seed);
        assert_eq!(reference, w.expected, "{}: monolithic GC vs plaintext", kind.name());

        let config = SessionConfig::for_circuit(&w.circuit);
        let (garbler, evaluator) =
            run_local_session(&w.circuit, &w.garbler_bits, &w.evaluator_bits, seed, &config)
                .unwrap_or_else(|e| panic!("{}: session failed: {e}", kind.name()));

        // Bit-identical to the monolithic path (same seed ⇒ same garbling).
        assert_eq!(garbler.outputs, reference, "{}: streamed vs monolithic", kind.name());
        assert_eq!(evaluator.outputs, reference, "{}: evaluator copy", kind.name());

        // All tables arrived, in window-sized chunks.
        assert_eq!(garbler.tables, w.circuit.num_and_gates() as u64, "{}", kind.name());
        assert_eq!(garbler.table_chunks, evaluator.table_chunks, "{}", kind.name());

        // The streaming discipline held: peak live wires fit the window,
        // and the window is a genuine bound (not circuit-sized).
        let window_wires = config.window.sww_wires() as usize;
        assert!(
            evaluator.peak_live_wires <= window_wires,
            "{}: peak {} exceeds window {}",
            kind.name(),
            evaluator.peak_live_wires,
            window_wires
        );
        assert!(evaluator.within_window, "{}", kind.name());
        assert!(
            evaluator.peak_live_wires < w.circuit.num_wires() as usize,
            "{}: streaming held the whole wire space ({} of {})",
            kind.name(),
            evaluator.peak_live_wires,
            w.circuit.num_wires()
        );
    }
}

#[test]
fn workload_windows_are_much_smaller_than_circuits() {
    // The quantitative version of "O(window), not O(circuit)": across the
    // suite, the streamed evaluator's live set must be a small fraction
    // of the wire space for the big circuits.
    for kind in WorkloadKind::ALL {
        let w = build_workload(kind, Scale::Small);
        let peak = Liveness::analyze(&w.circuit).peak_live_wires(&w.circuit);
        let wires = w.circuit.num_wires() as usize;
        assert!(peak <= wires, "{}", kind.name());
        if wires > 50_000 {
            // Mersenne legitimately keeps its whole 624-word twister state
            // live, so the factor is conservative; most workloads are far
            // below it.
            assert!(
                peak * 2 <= wires,
                "{}: peak {peak} not ≪ {wires} wires — streaming buys nothing",
                kind.name()
            );
        }
    }
}

#[test]
fn streamed_chunk_sizing_follows_the_window_model() {
    let w = build_workload(WorkloadKind::DotProduct, Scale::Small);
    let config = SessionConfig::for_circuit(&w.circuit);
    let (garbler, _) =
        run_local_session(&w.circuit, &w.garbler_bits, &w.evaluator_bits, 5, &config).unwrap();
    let chunk = config.chunk_tables() as u64;
    let expected_chunks = garbler.tables.div_ceil(chunk);
    assert_eq!(garbler.table_chunks, expected_chunks);
}

#[test]
fn tcp_loopback_session_runs_a_workload() {
    let w = build_workload(WorkloadKind::Hamming, Scale::Small);
    let config = SessionConfig::for_circuit(&w.circuit);
    let (garbler, evaluator) =
        run_tcp_session(&w.circuit, &w.garbler_bits, &w.evaluator_bits, 10, &config)
            .expect("tcp session");

    assert_eq!(garbler.outputs, w.expected);
    assert_eq!(evaluator.outputs, w.expected);
    assert_eq!(garbler.bytes_sent, evaluator.bytes_received);
    assert_eq!(evaluator.bytes_sent, garbler.bytes_received);
    assert!(evaluator.within_window);
}

#[test]
fn mem_and_tcp_channels_carry_identical_protocol_bytes() {
    // Same circuit, same seeds ⇒ the transcript must not depend on the
    // transport.
    let w = build_workload(WorkloadKind::Relu, Scale::Small);
    let config = SessionConfig::for_circuit(&w.circuit);
    let (mem_garbler, _) =
        run_local_session(&w.circuit, &w.garbler_bits, &w.evaluator_bits, 42, &config).unwrap();
    let (tcp_garbler, _) =
        run_tcp_session(&w.circuit, &w.garbler_bits, &w.evaluator_bits, 42, &config).unwrap();

    assert_eq!(mem_garbler.outputs, tcp_garbler.outputs);
    assert_eq!(mem_garbler.bytes_sent, tcp_garbler.bytes_sent);
    assert_eq!(mem_garbler.bytes_received, tcp_garbler.bytes_received);
    assert_eq!(mem_garbler.table_chunks, tcp_garbler.table_chunks);
}
