//! Cross-crate integration tests: every VIP workload, end to end.
//!
//! For each workload (small scale) this asserts the full equivalence
//! chain the paper's §5 "Correctness" methodology relies on:
//!
//!   independent plaintext reference
//!     == circuit plaintext evaluation
//!     == garble∘evaluate∘decode (direct, EMP-style)
//!     == garble∘evaluate∘decode through compiled HAAC streams,
//!        for every reorder strategy and several SWW sizes.

use haac::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn every_workload_circuit_matches_its_plaintext_reference() {
    for kind in WorkloadKind::ALL {
        let w = build_workload(kind, Scale::Small);
        let out = w
            .circuit
            .eval(&w.garbler_bits, &w.evaluator_bits)
            .expect("sample inputs fit the circuit");
        assert_eq!(out, w.expected, "{}", kind.name());
    }
}

#[test]
fn every_workload_garbles_and_evaluates_correctly() {
    let mut rng = StdRng::seed_from_u64(0xE2E);
    for kind in WorkloadKind::ALL {
        let w = build_workload(kind, Scale::Small);
        let garbling = garble(&w.circuit, &mut rng, HashScheme::Rekeyed);
        let inputs = garbling.encode_inputs(&w.circuit, &w.garbler_bits, &w.evaluator_bits);
        let out_labels =
            evaluate(&w.circuit, &garbling.garbled.tables, &inputs, HashScheme::Rekeyed);
        let got = decode_outputs(&out_labels, &garbling.garbled.output_decode);
        assert_eq!(got, w.expected, "{}", kind.name());
    }
}

#[test]
fn every_workload_survives_haac_compilation_at_multiple_sww_sizes() {
    let mut rng = StdRng::seed_from_u64(0xC0);
    for kind in WorkloadKind::ALL {
        let w = build_workload(kind, Scale::Small);
        for sww_wires in [64u32, 1024] {
            let window = WindowModel::new(sww_wires);
            for strategy in [ReorderKind::Baseline, ReorderKind::Segment, ReorderKind::Full] {
                let (lowered, _) = compile(&w.circuit, strategy, window);
                let got = run_gc_through_streams(
                    &lowered,
                    window,
                    &w.garbler_bits,
                    &w.evaluator_bits,
                    &mut rng,
                    HashScheme::Rekeyed,
                )
                .unwrap_or_else(|e| panic!("{} sww={sww_wires} {strategy:?}: {e}", kind.name()));
                assert_eq!(got, w.expected, "{} sww={sww_wires} {strategy:?}", kind.name());
            }
        }
    }
}

#[test]
fn every_workload_runs_the_two_party_protocol() {
    for kind in [WorkloadKind::DotProduct, WorkloadKind::Relu, WorkloadKind::Hamming] {
        let w = build_workload(kind, Scale::Small);
        let run = run_two_party(&w.circuit, &w.garbler_bits, &w.evaluator_bits, 5);
        assert_eq!(run.outputs, w.expected, "{}", kind.name());
        assert!(run.garbler_to_evaluator_bytes > 0);
    }
}

#[test]
fn every_workload_simulates_on_the_default_accelerator() {
    let config = HaacConfig { num_ges: 4, sww_bytes: 16 * 1024, ..HaacConfig::default() };
    for kind in WorkloadKind::ALL {
        let w = build_workload(kind, Scale::Small);
        let (lowered, stats) = compile(&w.circuit, ReorderKind::Segment, config.window());
        let report = map_and_simulate(&lowered, &config);
        assert_eq!(report.instructions as usize, stats.instructions, "{}", kind.name());
        assert!(report.cycles > 0, "{}", kind.name());
        // An accelerator issuing ≤ num_ges instructions/cycle can't beat
        // the theoretical minimum.
        let min_cycles = (stats.instructions as u64) / (config.num_ges as u64 + 1);
        assert!(report.cycles >= min_cycles, "{}", kind.name());
    }
}
