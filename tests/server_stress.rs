//! Stress/soak test: many concurrent mixed-workload sessions through
//! the multi-session server on a deliberately small gate-engine pool.
//!
//! 32 clients (in-memory and TCP mixed) demand all eight VIP workloads
//! at once from a 3-engine pool, so sessions queue, multiplex, and
//! contend for the circuit cache. Every session must complete with
//! outputs bit-identical to the plaintext reference (checked client-
//! and server-side), and the registry must end empty. A second round
//! mixes poisoned clients in and asserts they are isolated without
//! disturbing a single healthy session.

use std::time::Duration;

use haac::server::{client, Server, ServerConfig, SessionRequest};
use haac::workloads::{Scale, Workload, WorkloadKind};
use haac_runtime::{Channel, SessionConfig};
use std::sync::Arc;

const SESSIONS: usize = 32;
const WORKERS: usize = 3;

fn prebuilt_mix() -> Vec<(WorkloadKind, Arc<(Workload, SessionConfig)>)> {
    WorkloadKind::ALL.iter().map(|&k| (k, Arc::new(client::prepare(k, Scale::Small)))).collect()
}

#[test]
fn soak_32_mixed_sessions_on_a_3_engine_pool() {
    let built = prebuilt_mix();
    let mut server = Server::new(ServerConfig { workers: WORKERS, ..ServerConfig::default() });
    let addr = server.listen_tcp("127.0.0.1:0").expect("bind ephemeral port");

    let handles: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let (kind, workload) = &built[i % built.len()];
            let kind = *kind;
            let workload = Arc::clone(workload);
            let request = SessionRequest::new(kind.name(), Scale::Small, 9_000 + i as u64);
            // Alternate transports: even sessions in-memory, odd over
            // real loopback TCP.
            let mem_channel = (i % 2 == 0).then(|| server.connect());
            std::thread::Builder::new()
                .name(format!("stress-client-{i}"))
                .spawn(move || match mem_channel {
                    Some(mut channel) => {
                        client::run_session_with(&mut channel, &request, &workload.0, &workload.1)
                    }
                    None => client::run_tcp_session_with(addr, &request, &workload.0, &workload.1),
                })
                .expect("spawn stress client")
        })
        .collect();

    for (i, handle) in handles.into_iter().enumerate() {
        let report = handle.join().expect("client thread survived");
        let report = report.unwrap_or_else(|e| panic!("session {i} failed: {e}"));
        // run_session_with already asserted outputs == plaintext
        // reference; spot-check the accounting is real.
        assert!(report.tables > 0, "session {i} streamed no tables");
        assert!(report.bytes_received > 0, "session {i} received nothing");
    }

    assert!(
        server.registry().wait_drained(Duration::from_secs(120)),
        "registry failed to drain: {} still active",
        server.registry().active_sessions()
    );
    assert_eq!(server.registry().active_sessions(), 0, "registry must end empty");
    // Eight distinct builds, everything else served from the cache.
    assert_eq!(server.cache().misses(), WorkloadKind::ALL.len() as u64);
    assert_eq!(server.cache().hits(), (SESSIONS - WorkloadKind::ALL.len()) as u64);

    let report = server.shutdown();
    assert_eq!(report.total_sessions, SESSIONS as u64);
    assert_eq!(report.completed, SESSIONS as u64);
    assert_eq!(report.failed, 0);
    assert_eq!(report.active, 0);
    assert!(report.aggregate_and_gates_per_sec > 0.0);
    assert!(
        report.p99_session_secs >= report.p50_session_secs,
        "p99 {} < p50 {}",
        report.p99_session_secs,
        report.p50_session_secs
    );
}

#[test]
fn soak_with_poisoned_clients_isolates_failures_under_load() {
    const HEALTHY: usize = 12;
    const POISONED: usize = 6;
    let built = prebuilt_mix();
    let server = Server::new(ServerConfig { workers: WORKERS, ..ServerConfig::default() });

    // Poisoned clients: garbage frames, refusable requests, and
    // mid-protocol hangups, interleaved with healthy load.
    let mut poison_handles = Vec::new();
    for i in 0..POISONED {
        let mut channel = server.connect();
        poison_handles.push(
            std::thread::Builder::new()
                .name(format!("poison-{i}"))
                .spawn(move || match i % 3 {
                    0 => {
                        // Garbage instead of a request.
                        channel.send(&[0xBA; 32]).unwrap();
                        channel.flush().unwrap();
                    }
                    1 => {
                        // A request the server must refuse.
                        let request = SessionRequest::new("NotAWorkload", Scale::Small, 0);
                        let _ = haac::server::request::write_request(&mut channel, &request);
                    }
                    _ => {
                        // Valid request, then hang up before the OT.
                        let request = SessionRequest::new("Hamm", Scale::Small, 5);
                        let _ = haac::server::request::write_request(&mut channel, &request);
                    }
                })
                .expect("spawn poison client"),
        );
    }

    let healthy_handles: Vec<_> = (0..HEALTHY)
        .map(|i| {
            let (kind, workload) = &built[i % built.len()];
            let kind = *kind;
            let workload = Arc::clone(workload);
            let mut channel = server.connect();
            std::thread::Builder::new()
                .name(format!("healthy-{i}"))
                .spawn(move || {
                    let request = SessionRequest::new(kind.name(), Scale::Small, 7_000 + i as u64);
                    client::run_session_with(&mut channel, &request, &workload.0, &workload.1)
                })
                .expect("spawn healthy client")
        })
        .collect();

    for handle in poison_handles {
        handle.join().expect("poison client survived");
    }
    for (i, handle) in healthy_handles.into_iter().enumerate() {
        handle
            .join()
            .expect("healthy client thread")
            .unwrap_or_else(|e| panic!("healthy session {i} failed beside poison: {e}"));
    }

    assert!(server.registry().wait_drained(Duration::from_secs(120)));
    let report = server.shutdown();
    assert_eq!(report.total_sessions, (HEALTHY + POISONED) as u64);
    assert_eq!(report.completed, HEALTHY as u64);
    assert_eq!(report.failed, POISONED as u64);
    assert_eq!(report.active, 0, "registry must end empty");
}
