//! Property-based tests over the whole stack (proptest).
//!
//! These check the core invariants on randomly generated values and
//! randomly generated circuits:
//!
//! - builder word ops match native u64 arithmetic;
//! - FP32 circuits match the reference semantics bit-for-bit;
//! - garble∘evaluate∘decode == plaintext on random DAG circuits;
//! - compiler passes (reorder/rename/ESW/OoR) preserve semantics at
//!   arbitrary SWW sizes;
//! - the SWW window math satisfies its residency contract.

use haac::circuit::float::{fp32_add_ref, fp32_canon, fp32_mul_ref};
use haac::prelude::*;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Builds a random but well-formed circuit from a script of gate picks.
fn random_circuit(script: &[(u8, u16, u16)], inputs: u32) -> Circuit {
    let mut b = Builder::new();
    let g = b.input_garbler(inputs / 2);
    let e = b.input_evaluator(inputs - inputs / 2);
    let mut pool: Vec<Bit> = g.into_iter().chain(e).collect();
    for &(op, i, j) in script {
        let x = pool[i as usize % pool.len()];
        let y = pool[j as usize % pool.len()];
        let out = match op % 4 {
            0 => b.and(x, y),
            1 => b.xor(x, y),
            2 => b.not(x),
            _ => b.mux(x, y, pool[(i as usize + 1) % pool.len()]),
        };
        pool.push(out);
    }
    let n = pool.len();
    let outputs: Vec<Bit> = pool.into_iter().skip(n.saturating_sub(8)).collect();
    b.finish(outputs).expect("random circuit is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adder_matches_u64(x in any::<u32>(), y in any::<u32>()) {
        let mut b = Builder::new();
        let xs = b.input_garbler(32);
        let ys = b.input_evaluator(32);
        let (s, carry) = b.add_words(&xs, &ys);
        let mut out = s;
        out.push(carry);
        let c = b.finish(out).unwrap();
        let bits = c.eval(&to_bits(x as u64, 32), &to_bits(y as u64, 32)).unwrap();
        prop_assert_eq!(from_bits(&bits), x as u64 + y as u64);
    }

    #[test]
    fn multiplier_matches_u64(x in any::<u32>(), y in any::<u32>()) {
        let mut b = Builder::new();
        let xs = b.input_garbler(32);
        let ys = b.input_evaluator(32);
        let p = b.mul_words(&xs, &ys);
        let c = b.finish(p).unwrap();
        let bits = c.eval(&to_bits(x as u64, 32), &to_bits(y as u64, 32)).unwrap();
        prop_assert_eq!(from_bits(&bits), x as u64 * y as u64);
    }

    #[test]
    fn divider_matches_u64(x in any::<u16>(), y in 1u16..) {
        let mut b = Builder::new();
        let xs = b.input_garbler(16);
        let ys = b.input_evaluator(16);
        let (q, r) = b.udivmod(&xs, &ys);
        let mut out = q;
        out.extend(r);
        let c = b.finish(out).unwrap();
        let bits = c.eval(&to_bits(x as u64, 16), &to_bits(y as u64, 16)).unwrap();
        let got_q = from_bits(&bits[..16]);
        let got_r = from_bits(&bits[16..]);
        prop_assert_eq!((got_q, got_r), ((x / y) as u64, (x % y) as u64));
    }

    #[test]
    fn fp32_add_circuit_matches_reference(a in any::<f32>(), b_val in any::<f32>()) {
        let (ab, bb) = (fp32_canon(a), fp32_canon(b_val));
        // NaN/Inf are outside the documented domain.
        prop_assume!(f32::from_bits(ab).is_finite() && f32::from_bits(bb).is_finite());
        let mut b = Builder::new();
        let xs = b.input_garbler(32);
        let ys = b.input_evaluator(32);
        let s = b.fp_add(&xs, &ys);
        let c = b.finish(s).unwrap();
        let bits = c.eval(&to_bits(ab as u64, 32), &to_bits(bb as u64, 32)).unwrap();
        prop_assert_eq!(from_bits(&bits) as u32, fp32_add_ref(ab, bb));
    }

    #[test]
    fn fp32_mul_circuit_matches_reference(a in any::<f32>(), b_val in any::<f32>()) {
        let (ab, bb) = (fp32_canon(a), fp32_canon(b_val));
        prop_assume!(f32::from_bits(ab).is_finite() && f32::from_bits(bb).is_finite());
        let mut b = Builder::new();
        let xs = b.input_garbler(32);
        let ys = b.input_evaluator(32);
        let p = b.fp_mul(&xs, &ys);
        let c = b.finish(p).unwrap();
        let bits = c.eval(&to_bits(ab as u64, 32), &to_bits(bb as u64, 32)).unwrap();
        prop_assert_eq!(from_bits(&bits) as u32, fp32_mul_ref(ab, bb));
    }

    #[test]
    fn gc_matches_plaintext_on_random_circuits(
        script in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..120),
        inputs in 2u32..24,
        seed in any::<u64>(),
        g_word in any::<u64>(),
        e_word in any::<u64>(),
    ) {
        let c = random_circuit(&script, inputs);
        let g_bits = to_bits(g_word, c.garbler_inputs());
        let e_bits = to_bits(e_word, c.evaluator_inputs());
        let expect = c.eval(&g_bits, &e_bits).unwrap();

        let mut rng = StdRng::seed_from_u64(seed);
        let garbling = garble(&c, &mut rng, HashScheme::Rekeyed);
        let labels = garbling.encode_inputs(&c, &g_bits, &e_bits);
        let out = evaluate(&c, &garbling.garbled.tables, &labels, HashScheme::Rekeyed);
        prop_assert_eq!(decode_outputs(&out, &garbling.garbled.output_decode), expect);
    }

    #[test]
    fn compiler_preserves_semantics_on_random_circuits(
        script in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..100),
        inputs in 2u32..16,
        sww in 2u32..64,
        seed in any::<u64>(),
        g_word in any::<u64>(),
        e_word in any::<u64>(),
    ) {
        let c = random_circuit(&script, inputs);
        let g_bits = to_bits(g_word, c.garbler_inputs());
        let e_bits = to_bits(e_word, c.evaluator_inputs());
        let expect = c.eval(&g_bits, &e_bits).unwrap();
        let window = WindowModel::new(sww);
        let mut rng = StdRng::seed_from_u64(seed);
        for kind in [ReorderKind::Baseline, ReorderKind::Segment, ReorderKind::Full] {
            let (lowered, _) = compile(&c, kind, window);
            let got = run_gc_through_streams(
                &lowered, window, &g_bits, &e_bits, &mut rng, HashScheme::Rekeyed,
            );
            prop_assert_eq!(got.unwrap(), expect.clone(), "{:?} sww={}", kind, sww);
        }
    }

    #[test]
    fn window_contract_holds(sww_exp in 1u32..12, frontier in any::<u16>()) {
        let window = WindowModel::new(1 << sww_exp);
        let frontier = frontier as u32;
        let base = window.base_for_frontier(frontier);
        prop_assert!(base.is_multiple_of(window.half()));
        prop_assert!(frontier >= base);
        prop_assert!(frontier < base + window.sww_wires());
    }
}
