//! # haac — a full reproduction of the HAAC garbled-circuits accelerator
//!
//! *HAAC: A Hardware-Software Co-Design to Accelerate Garbled Circuits*
//! (Jianqiao Mo, Jayanth Gopinath, Brandon Reagen — ISCA 2023) proposes
//! a compiler + ISA + accelerator that together speed garbled-circuit
//! evaluation by 589× over a CPU with DDR4 (2,627× with HBM2) in
//! 4.3 mm². This workspace rebuilds the complete system in Rust:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`circuit`] | Boolean circuit IR, synthesis frontend (EMP equivalent), Bristol I/O, AES/FP32 generators |
//! | [`gc`] | Half-gate garbling with FreeXOR and re-keyed hashing (the "CPU GC" baseline), streaming garble/evaluate, base OT |
//! | [`runtime`] | Streaming two-party execution: pluggable channels (in-memory, TCP), framed table streaming, sessions |
//! | [`server`] | Multi-session garbling service: concurrent evaluator connections multiplexed over a shared gate-engine pool, with a circuit cache and session registry |
//! | [`workloads`] | The eight VIP-Bench workloads + Table 5 microbenchmarks |
//! | [`core`] | The HAAC ISA, optimizing compiler, cycle-level simulator, area/power/energy model |
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results. The `haac-bench`
//! crate regenerates every table and figure of the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use haac::prelude::*;
//!
//! // 1. Write a private function as a circuit (millionaires' problem).
//! let mut b = Builder::new();
//! let alice = b.input_garbler(32);
//! let bob = b.input_evaluator(32);
//! let alice_richer = b.gt_u(&alice, &bob);
//! let circuit = b.finish(vec![alice_richer]).unwrap();
//!
//! // 2. Run it as a real two-party GC protocol: a streaming session over
//! //    paired in-process channels (swap in a TcpChannel for the network).
//! let config = SessionConfig::for_circuit(&circuit);
//! let (run, _) = run_local_session(
//!     &circuit, &to_bits(5_000_000, 32), &to_bits(3_141_592, 32), 42, &config,
//! ).unwrap();
//! assert_eq!(run.outputs, vec![true]);
//!
//! // 3. Compile it for HAAC and simulate the accelerator.
//! let config = HaacConfig::default(); // 16 GEs, 2 MB SWW, DDR4
//! let (lowered, _) = compile(&circuit, ReorderKind::Full, config.window());
//! let report = map_and_simulate(&lowered, &config);
//! assert!(report.cycles > 0);
//! ```

#![warn(missing_docs)]

pub use haac_circuit as circuit;
pub use haac_core as core;
pub use haac_gc as gc;
pub use haac_runtime as runtime;
pub use haac_server as server;
pub use haac_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use haac_circuit::{from_bits, to_bits, Bit, Builder, Circuit, GateOp, Word};
    pub use haac_core::compiler::{compile, CompileStats, ReorderKind};
    pub use haac_core::exec::run_gc_through_streams;
    pub use haac_core::lower::{
        lower_for_streaming, lower_with_reorder, lower_with_window, StreamingPlan,
    };
    pub use haac_core::sim::{map_and_simulate, DramKind, HaacConfig, Role, SimReport};
    pub use haac_core::WindowModel;
    pub use haac_gc::protocol::run_two_party;
    pub use haac_gc::{
        decode_outputs, evaluate, garble, HashScheme, StreamingEvaluator, StreamingGarbler,
    };
    pub use haac_runtime::{
        run_evaluator, run_garbler, run_local_session, run_tcp_session, Channel, MemChannel,
        SessionConfig, SessionReport, TcpChannel,
    };
    pub use haac_server::{Server, ServerConfig, ServerReport, SessionRequest};
    pub use haac_workloads::{build as build_workload, Scale, WorkloadKind};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_a_working_pipeline() {
        let w = build_workload(WorkloadKind::DotProduct, Scale::Small);
        let config = HaacConfig { num_ges: 2, sww_bytes: 4096, ..HaacConfig::default() };
        let (lowered, _) = compile(&w.circuit, ReorderKind::Segment, config.window());
        let report = map_and_simulate(&lowered, &config);
        assert!(report.seconds > 0.0);
    }
}
