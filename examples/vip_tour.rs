//! VIP-Bench tour: characterize all eight workloads (a live Table 2)
//! and verify each one end to end through the HAAC toolchain.
//!
//! Set `HAAC_SCALE=paper` for the paper's input sizes (slow: millions of
//! gates); the default small scale finishes in seconds.
//!
//! Run with: `cargo run --release --example vip_tour`

use haac::circuit::stats::CircuitStats;
use haac::core::compiler::{compile, ReorderKind};
use haac::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let scale = Scale::from_env();
    println!("scale: {scale:?} (set HAAC_SCALE=paper for Table 2 sizes)");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>7} {:>8} {:>9}  verified",
        "bench", "levels", "wires(k)", "gates(k)", "AND%", "ILP", "spent%"
    );

    let config = HaacConfig::default();
    let window = config.window();
    let mut rng = StdRng::seed_from_u64(86);

    for kind in WorkloadKind::ALL {
        let w = build_workload(kind, scale);
        let s = CircuitStats::of(&w.circuit);
        let (lowered, stats) = compile(&w.circuit, ReorderKind::Full, window);

        // End-to-end check: garble + evaluate through the compiled
        // program and compare with the independent plaintext reference.
        let verified = if matches!(scale, Scale::Small) {
            let got = run_gc_through_streams(
                &lowered,
                window,
                &w.garbler_bits,
                &w.evaluator_bits,
                &mut rng,
                HashScheme::Rekeyed,
            )
            .expect("compiled workload respects the memory discipline");
            if got == w.expected {
                "ok"
            } else {
                "MISMATCH"
            }
        } else {
            "(skipped at paper scale)"
        };

        println!(
            "{:<10} {:>8} {:>10.0} {:>10.0} {:>7.2} {:>8.0} {:>8.1}%  {}",
            kind.name(),
            s.levels,
            s.wires as f64 / 1e3,
            s.gates as f64 / 1e3,
            s.and_percent,
            s.ilp,
            stats.spent_percent,
            verified
        );
    }
}
