//! A genuine two-party garbled-circuit session over TCP.
//!
//! Both parties hold the same public circuit (a 32-bit millionaires'
//! comparator), contribute private inputs, and learn only the output.
//! The garbler streams tables in window-sized chunks over a real socket;
//! the evaluator consumes them with O(window) live-wire memory.
//!
//! Run self-contained (both roles, loopback TCP):
//!
//! ```text
//! cargo run --release --example two_party_tcp
//! ```
//!
//! Or as two real processes (start the evaluator first):
//!
//! ```text
//! cargo run --release --example two_party_tcp -- evaluator 0.0.0.0:7700 3141592
//! cargo run --release --example two_party_tcp -- garbler  127.0.0.1:7700 5000000
//! ```

use std::net::TcpListener;
use std::thread;

use haac::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The shared public function: is Alice's 32-bit value greater than
/// Bob's, and are they equal?
fn comparator() -> Circuit {
    let mut b = Builder::new();
    let alice = b.input_garbler(32);
    let bob = b.input_evaluator(32);
    let greater = b.gt_u(&alice, &bob);
    let equal = b.eq_words(&alice, &bob);
    b.finish(vec![greater, equal]).expect("comparator circuit is valid")
}

fn print_report(who: &str, report: &SessionReport) {
    println!(
        "[{who}] outputs: greater={} equal={} — {} B sent, {} B received, \
         {} table chunks, peak {} live wires, {:?}",
        report.outputs[0],
        report.outputs[1],
        report.bytes_sent,
        report.bytes_received,
        report.table_chunks,
        report.peak_live_wires,
        report.elapsed,
    );
}

fn run_garbler_side(addr: &str, value: u64) {
    let circuit = comparator();
    let mut channel = TcpChannel::connect(addr).expect("connect to the evaluator");
    println!("[garbler] connected to {addr}");
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    let config = SessionConfig::for_circuit(&circuit);
    let report = run_garbler(&circuit, &to_bits(value, 32), &mut rng, &config, &mut channel)
        .expect("garbler session");
    print_report("garbler", &report);
}

fn run_evaluator_side(addr: &str, value: u64) {
    let circuit = comparator();
    let listener = TcpListener::bind(addr).expect("bind listen address");
    println!("[evaluator] listening on {}", listener.local_addr().expect("local addr"));
    let (stream, peer) = listener.accept().expect("accept the garbler");
    println!("[evaluator] garbler connected from {peer}");
    let mut channel = TcpChannel::from_stream(stream).expect("evaluator channel");
    let mut rng = StdRng::seed_from_u64(0xB0B);
    let report = run_evaluator(&circuit, &to_bits(value, 32), &mut rng, &mut channel)
        .expect("evaluator session");
    print_report("evaluator", &report);
}

fn run_local() {
    let alice_value = 5_000_000u64;
    let bob_value = 3_141_592u64;
    println!("self-contained demo: Alice has {alice_value}, Bob has {bob_value}");

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let evaluator = thread::spawn(move || {
        let circuit = comparator();
        let (stream, _) = listener.accept().expect("accept");
        let mut channel = TcpChannel::from_stream(stream).expect("channel");
        let mut rng = StdRng::seed_from_u64(0xB0B);
        run_evaluator(&circuit, &to_bits(bob_value, 32), &mut rng, &mut channel)
            .expect("evaluator session")
    });

    let circuit = comparator();
    let mut channel = TcpChannel::connect(&addr).expect("connect");
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    let config = SessionConfig::for_circuit(&circuit);
    let garbler_report =
        run_garbler(&circuit, &to_bits(alice_value, 32), &mut rng, &config, &mut channel)
            .expect("garbler session");
    let evaluator_report = evaluator.join().expect("evaluator thread");

    print_report("garbler", &garbler_report);
    print_report("evaluator", &evaluator_report);
    assert_eq!(garbler_report.outputs, evaluator_report.outputs);
    assert_eq!(garbler_report.outputs, vec![alice_value > bob_value, alice_value == bob_value]);
    println!(
        "verdict over real TCP ({addr}): {}",
        if garbler_report.outputs[0] { "Alice is richer" } else { "Bob is at least as rich" }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        None => run_local(),
        Some(role @ ("garbler" | "evaluator")) => {
            let addr = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7700");
            let value: u64 = args
                .get(3)
                .map(|v| v.parse().expect("value must be a u64"))
                .unwrap_or(if role == "garbler" { 5_000_000 } else { 3_141_592 });
            if role == "garbler" {
                run_garbler_side(addr, value);
            } else {
                run_evaluator_side(addr, value);
            }
        }
        Some(other) => {
            eprintln!("unknown role `{other}`; use `garbler`, `evaluator`, or no argument");
            std::process::exit(2);
        }
    }
}
