//! The millionaires' problem, end to end: Alice and Bob learn who is
//! richer — and nothing else.
//!
//! This is the canonical two-party-computation demo (Yao 1986). The
//! example runs the real streaming protocol — garbler and evaluator on
//! separate threads joined by in-process channels, base OT for Bob's
//! input labels, tables streamed in window-sized chunks — and then shows
//! what the HAAC accelerator would do with the same circuit.
//!
//! Run with: `cargo run --release --example millionaires`

use haac::prelude::*;

fn main() {
    let alice_wealth = 62_000_000u64;
    let bob_wealth = 58_999_999u64;

    let mut b = Builder::new();
    let alice = b.input_garbler(64);
    let bob = b.input_evaluator(64);
    let alice_richer = b.gt_u(&alice, &bob);
    let equal = b.eq_words(&alice, &bob);
    let circuit = b.finish(vec![alice_richer, equal]).expect("comparator circuit is valid");

    println!(
        "millionaires' comparator: {} gates ({} AND) over 64-bit wealth",
        circuit.num_gates(),
        circuit.num_and_gates()
    );

    let config = SessionConfig::for_circuit(&circuit);
    let (run, evaluator) = run_local_session(
        &circuit,
        &to_bits(alice_wealth, 64),
        &to_bits(bob_wealth, 64),
        2023,
        &config,
    )
    .expect("in-process session");
    let (richer, equal) = (run.outputs[0], run.outputs[1]);
    println!(
        "verdict: {}",
        if equal {
            "equally wealthy"
        } else if richer {
            "Alice is richer"
        } else {
            "Bob is richer"
        }
    );
    println!(
        "streamed session: {} B sent / {} B received by Alice in {} chunks, {} OTs",
        run.bytes_sent, run.bytes_received, run.table_chunks, evaluator.ot_transfers
    );
    println!(
        "evaluator held at most {} live wires of {} total (window: {}) — and neither party saw a number",
        evaluator.peak_live_wires,
        circuit.num_wires(),
        config.window.sww_wires()
    );

    // The HAAC view of the same computation.
    let haac = HaacConfig::default();
    let (lowered, stats) = compile(&circuit, ReorderKind::Full, haac.window());
    let report = map_and_simulate(&lowered, &haac);
    println!(
        "on HAAC: {} instructions in {} cycles ({:.1} ns) — {} tables streamed",
        stats.instructions,
        report.cycles,
        report.seconds * 1e9,
        stats.and_count
    );
}
