//! Garbled AES-128 — the classic secure-function-evaluation benchmark
//! (and Table 5's marquee circuit).
//!
//! Alice holds an AES key, Bob a plaintext block. Bob learns
//! `AES_key(block)` without Alice ever seeing the block or Bob the key —
//! the building block of OPRFs and legacy SFE demos. This runs the real
//! protocol, checks the result against the FIPS-197 test vector, and
//! reports what HAAC does to the same circuit.
//!
//! Run with: `cargo run --release --example garbled_aes`

use std::time::Instant;

use haac::circuit::aes_circuit::{aes128_circuit, bits_to_bytes, bytes_to_bits};
use haac::prelude::*;

fn main() {
    // FIPS-197 Appendix C.1 vector.
    let key: [u8; 16] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
        0x0f,
    ];
    let block: [u8; 16] = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee,
        0xff,
    ];

    let circuit = aes128_circuit().expect("AES-128 circuit builds");
    println!(
        "AES-128 circuit (composite-field S-boxes): {} gates, {} AND, depth {}",
        circuit.num_gates(),
        circuit.num_and_gates(),
        circuit.depth()
    );

    // A genuine two-party session over a real (loopback) TCP socket:
    // Bob listens and evaluates, Alice connects and streams tables.
    let started = Instant::now();
    let config = SessionConfig::for_circuit(&circuit);
    let (run, bob_report) =
        run_tcp_session(&circuit, &bytes_to_bits(&key), &bytes_to_bits(&block), 197, &config)
            .expect("tcp session");
    let elapsed = started.elapsed();
    assert_eq!(run.outputs, bob_report.outputs, "both parties learn the same ciphertext");
    let ciphertext = bits_to_bytes(&run.outputs);

    print!("garbled ciphertext: ");
    for byte in &ciphertext {
        print!("{byte:02x}");
    }
    println!();
    assert_eq!(
        ciphertext,
        vec![
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a
        ],
        "must match FIPS-197 C.1"
    );
    println!(
        "matches FIPS-197 — computed privately over loopback TCP in {elapsed:?}: \
         {} KiB streamed in {} chunks, {} OTs, peak {} live wires",
        run.bytes_sent / 1024,
        run.table_chunks,
        run.ot_transfers,
        bob_report.peak_live_wires,
    );

    // The same circuit on HAAC (Table 5 row: FASE garbles this in 439 µs).
    let config =
        HaacConfig { sww_bytes: 1024 * 1024, role: Role::Garbler, ..HaacConfig::default() };
    let (lowered, stats) = compile(&circuit, ReorderKind::Full, config.window());
    let report = map_and_simulate(&lowered, &config);
    println!(
        "HAAC (Garbler, 16 GEs, 1 MB SWW): {} instructions, {} tables → {:.2} µs \
         ({:.0}× this host's CPU garbling; FASE needs 439 µs)",
        stats.instructions,
        stats.and_count,
        report.seconds * 1e6,
        elapsed.as_secs_f64() / report.seconds
    );
}
