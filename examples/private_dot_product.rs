//! Private dot product — the VIP-Bench workload as a real application.
//!
//! Two parties each hold a feature vector (say, a portfolio and a risk
//! model) and want the inner product without revealing the vectors. This
//! example runs the paper's DotProd workload through the two-party
//! protocol and compares the three execution targets the paper compares:
//! plaintext CPU, GC on CPU, and GC on the simulated HAAC accelerator.
//!
//! Run with: `cargo run --release --example private_dot_product`

use std::time::Instant;

use haac::prelude::*;
use haac::workloads::{bits_to_u32s, dot_product, u32s_to_bits};

fn main() {
    let n = dot_product::num_elements(Scale::Small);
    let xs: Vec<u32> = (1..=n as u32).collect();
    let ys: Vec<u32> = (0..n as u32).map(|i| 100 + i).collect();
    let g_bits = u32s_to_bits(&xs);
    let e_bits = u32s_to_bits(&ys);

    let w = build_workload(WorkloadKind::DotProduct, Scale::Small);
    println!(
        "DotProd ({n} × 32-bit): {} gates, {} AND",
        w.circuit.num_gates(),
        w.circuit.num_and_gates()
    );

    // Plaintext.
    let t0 = Instant::now();
    let plain = w.run_plaintext(&g_bits, &e_bits);
    let t_plain = t0.elapsed();
    println!("plaintext result: {} in {t_plain:?}", bits_to_u32s(&plain)[0]);

    // Two-party GC, streamed: garbler and evaluator threads joined by
    // in-process channels, tables shipped in window-sized chunks.
    let t0 = Instant::now();
    let config = SessionConfig::for_circuit(&w.circuit);
    let (run, evaluator) =
        run_local_session(&w.circuit, &g_bits, &e_bits, 99, &config).expect("session");
    let t_gc = t0.elapsed();
    assert_eq!(run.outputs, plain);
    println!(
        "streaming two-party GC: same result in {t_gc:?} ({:.0}× plaintext); \
         {} chunks, {} B on the wire, peak {} live wires of {}",
        t_gc.as_secs_f64() / t_plain.as_secs_f64().max(1e-9),
        run.table_chunks,
        run.bytes_sent,
        evaluator.peak_live_wires,
        w.circuit.num_wires(),
    );

    // HAAC, both memory systems.
    for dram in [DramKind::Ddr4, DramKind::Hbm2] {
        let config = HaacConfig { dram, ..HaacConfig::default() };
        let (lowered, _) = compile(&w.circuit, ReorderKind::Full, config.window());
        let report = map_and_simulate(&lowered, &config);
        println!(
            "HAAC ({}): {:.3} µs — {:.0}× faster than this CPU's GC",
            dram.label(),
            report.seconds * 1e6,
            t_gc.as_secs_f64() / report.seconds
        );
    }
}
