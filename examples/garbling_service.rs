//! A miniature deployment of the multi-session garbling service.
//!
//! Starts a server with a 4-engine pool serving TCP on an ephemeral
//! loopback port, drives a burst of concurrent evaluator clients over
//! the VIP workload mix (half over TCP, half in-process), then shuts
//! down gracefully and prints the aggregate report.
//!
//! Run with: `cargo run --release --example garbling_service`

use std::sync::Arc;
use std::time::Instant;

use haac::prelude::*;
use haac::server::client;

fn main() {
    let mut server = Server::new(ServerConfig { workers: 4, ..ServerConfig::default() });
    let addr = server.listen_tcp("127.0.0.1:0").expect("bind a loopback port");
    println!("garbling service up: 4 engines, listening on {addr}");

    // A burst of 12 concurrent clients cycling three workloads.
    let mix = [WorkloadKind::DotProduct, WorkloadKind::Hamming, WorkloadKind::Relu];
    let built: Vec<Arc<_>> =
        mix.iter().map(|&k| Arc::new(client::prepare(k, Scale::Small))).collect();
    let start = Instant::now();
    let clients: Vec<_> = (0..12)
        .map(|i| {
            let kind = mix[i % mix.len()];
            let workload = Arc::clone(&built[i % mix.len()]);
            let mem_channel = (i % 2 == 0).then(|| server.connect());
            std::thread::spawn(move || {
                let request = SessionRequest::new(kind.name(), Scale::Small, i as u64);
                let report = match mem_channel {
                    Some(mut channel) => {
                        client::run_session_with(&mut channel, &request, &workload.0, &workload.1)
                    }
                    None => client::run_tcp_session_with(addr, &request, &workload.0, &workload.1),
                }
                .expect("session succeeds");
                (kind, report)
            })
        })
        .collect();
    for client in clients {
        let (kind, report) = client.join().expect("client thread");
        println!(
            "  {:8} ✓ {:6} AND tables, {:9.0} gates/s (evaluator side)",
            kind.name(),
            report.tables,
            report.and_gates_per_sec()
        );
    }
    println!("burst completed in {:.1?}", start.elapsed());

    let summary = server.shutdown();
    println!(
        "served {} sessions ({} ok, {} failed) · aggregate {:.0} AND-gates/s · p50 {:.1} ms · p99 {:.1} ms",
        summary.total_sessions,
        summary.completed,
        summary.failed,
        summary.aggregate_and_gates_per_sec,
        summary.p50_session_secs * 1e3,
        summary.p99_session_secs * 1e3,
    );
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.active, 0);
}
