//! Quickstart: the full HAAC pipeline on one small private function.
//!
//! Builds a private 32-bit multiply circuit, runs it three ways —
//! plaintext, real two-party garbled circuits on the CPU, and compiled
//! onto the simulated HAAC accelerator — and reports the accelerator's
//! advantage.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Instant;

use haac::prelude::*;

fn main() {
    // 1. Write the function as a circuit: Alice's x times Bob's y.
    let mut b = Builder::new();
    let x = b.input_garbler(32);
    let y = b.input_evaluator(32);
    let product = b.mul_words_trunc(&x, &y);
    let circuit = b.finish(product).expect("multiplier circuit is valid");
    println!(
        "circuit: {} gates ({} AND), depth {}",
        circuit.num_gates(),
        circuit.num_and_gates(),
        circuit.depth()
    );

    let alice = 123_456u64;
    let bob = 7_891u64;

    // 2. Plaintext reference.
    let plain =
        circuit.eval(&to_bits(alice, 32), &to_bits(bob, 32)).expect("inputs are the right width");
    println!("plaintext: {alice} * {bob} = {}", from_bits(&plain));

    // 3. Real two-party GC protocol on the CPU (garbler and evaluator
    //    threads, simulated OT) — this is what HAAC accelerates.
    let started = Instant::now();
    let run = run_two_party(&circuit, &to_bits(alice, 32), &to_bits(bob, 32), 7);
    let cpu_time = started.elapsed();
    assert_eq!(run.outputs, plain, "GC must agree with plaintext");
    println!(
        "two-party GC: same answer in {cpu_time:?} ({} bytes garbler→evaluator, {} OTs)",
        run.garbler_to_evaluator_bytes, run.ot_transfers
    );

    // 4. Compile for HAAC and simulate the paper's headline design
    //    (16 gate engines, 2 MB SWW, DDR4).
    let config = HaacConfig::default();
    let (lowered, stats) = compile(&circuit, ReorderKind::Full, config.window());
    println!(
        "HAAC program: {} instructions, {} tables, {:.1}% spent wires, {} OoR reads",
        stats.instructions, stats.and_count, stats.spent_percent, stats.oor_count
    );
    let report = map_and_simulate(&lowered, &config);
    println!(
        "HAAC simulation: {} cycles = {:.3} µs on {} GEs ({})",
        report.cycles,
        report.seconds * 1e6,
        config.num_ges,
        config.dram.label(),
    );
    println!("speedup over this machine's CPU GC: {:.0}×", cpu_time.as_secs_f64() / report.seconds);

    // 5. And prove the compiled program still computes the right thing,
    //    end to end through the modeled memory system.
    let mut rng = rand::thread_rng();
    let via_streams = run_gc_through_streams(
        &lowered,
        config.window(),
        &to_bits(alice, 32),
        &to_bits(bob, 32),
        &mut rng,
        HashScheme::Rekeyed,
    )
    .expect("compiled program respects the memory discipline");
    assert_eq!(via_streams, plain);
    println!("stream-executed GC matches plaintext — compiler verified.");
}
