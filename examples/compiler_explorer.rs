//! Compiler explorer: watch the HAAC passes transform a program
//! (the paper's Fig. 5, live).
//!
//! Prints the instruction stream of a small circuit after each compiler
//! stage — baseline assembly, full reordering, renaming, ESW, and OoR
//! marking — then shows how the choices change wire traffic.
//!
//! Run with: `cargo run --release --example compiler_explorer`

use haac::core::compiler::{self, ReorderKind};
use haac::core::sim::{map_and_simulate, HaacConfig};
use haac::core::WindowModel;
use haac::prelude::*;

fn print_program(title: &str, p: &haac::core::Program) {
    println!("--- {title} ---");
    for (i, instr) in p.instructions.iter().enumerate() {
        println!(
            "  {:>2}: {} {:>2}, {:>2} -> {}{}",
            i,
            instr.op,
            instr.a,
            instr.b,
            p.output_addr(i),
            if instr.live { "  [live]" } else { "" },
        );
    }
}

fn main() {
    // The example circuit of the paper's Fig. 4/5:
    //   4 = 2 XOR 3; 5 = 2 AND 3; 6 = 1 XOR 4; 7 = 4 AND 5 (renumbered).
    let mut b = Builder::new();
    let inputs = b.input_garbler(3);
    let (w1, w2, w3) = (inputs[0], inputs[1], inputs[2]);
    let x = b.xor(w2, w3);
    let a = b.and(w2, w3);
    let y = b.xor(w1, x);
    let z = b.and(x, a);
    let circuit = b.finish(vec![y, z]).expect("example circuit is valid");

    // A deliberately tiny SWW (4 wires) so the window actually slides.
    let window = WindowModel::new(4);

    let baseline = compiler::assemble(&circuit);
    print_program("baseline (renamed, original order)", &baseline);

    let full = compiler::full_reorder(&circuit);
    print_program("full reorder + rename (level order)", &full);

    let mut esw = full.clone();
    compiler::eliminate_spent_wires(&mut esw, window);
    print_program("after ESW (live bits minimized)", &esw);

    let lowered = compiler::mark_out_of_range(&esw, window);
    print_program("after OoR marking (0 = OoRW queue)", &lowered.program);
    println!("OoR address streams per instruction: {:?}", lowered.oor_addrs);

    // Now at benchmark scale: compare the three schedules on MatMult.
    println!();
    println!("schedule comparison on MatMult (small scale):");
    let w = build_workload(WorkloadKind::MatMult, Scale::Small);
    let config = HaacConfig { num_ges: 4, sww_bytes: 8192, ..HaacConfig::default() };
    println!(
        "  {:<10} {:>10} {:>10} {:>12} {:>10}",
        "schedule", "cycles", "OoR", "live wires", "spent %"
    );
    for kind in [ReorderKind::Baseline, ReorderKind::Segment, ReorderKind::Full] {
        let (lowered, stats) = compiler::compile(&w.circuit, kind, config.window());
        let report = map_and_simulate(&lowered, &config);
        println!(
            "  {:<10} {:>10} {:>10} {:>12} {:>9.1}%",
            kind.label(),
            report.cycles,
            stats.oor_count,
            stats.live_count,
            stats.spent_percent
        );
    }
}
